"""Aggregate statistics over inferred blackholing observations.

:class:`InferenceReport` is the bridge between the inference engine and the
table/figure analyses: it indexes observations by dataset (project),
provider, user and prefix, and answers the aggregation questions the
evaluation sections ask (visibility per dataset, uniqueness, per-day
activity, per-provider and per-user prefix counts).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.events import BlackholingObservation, DetectionMethod
from repro.netutils.prefixes import Prefix
from repro.netutils.timeutils import SECONDS_PER_DAY, day_start

__all__ = ["DailyActivity", "InferenceReport"]


@dataclass(frozen=True)
class DailyActivity:
    """Active providers / users / prefixes for one day (Figure 4)."""

    day: float
    providers: int
    users: int
    prefixes: int


class InferenceReport:
    """Queryable aggregation over a set of observations."""

    def __init__(self, observations: Iterable[BlackholingObservation]) -> None:
        self.observations = list(observations)

    # ------------------------------------------------------------------ #
    # Basic selections
    # ------------------------------------------------------------------ #
    def for_project(self, project: str) -> "InferenceReport":
        return InferenceReport(
            [o for o in self.observations if o.project == project]
        )

    def projects(self) -> set[str]:
        return {o.project for o in self.observations}

    def providers(self, project: str | None = None) -> set[str]:
        return {
            o.provider_key
            for o in self.observations
            if project is None or o.project == project
        }

    def users(self, project: str | None = None) -> set[int]:
        return {
            o.user_asn
            for o in self.observations
            if o.user_asn is not None and (project is None or o.project == project)
        }

    def prefixes(self, project: str | None = None) -> set[Prefix]:
        return {
            o.prefix
            for o in self.observations
            if project is None or o.project == project
        }

    def ipv4_prefixes(self, project: str | None = None) -> set[Prefix]:
        return {p for p in self.prefixes(project) if p.family == 4}

    def host_route_fraction(self) -> float:
        """Fraction of distinct blackholed IPv4 prefixes that are /32s."""
        prefixes = self.ipv4_prefixes()
        if not prefixes:
            return 0.0
        return sum(1 for p in prefixes if p.is_host_route) / len(prefixes)

    # ------------------------------------------------------------------ #
    # Uniqueness across datasets (Table 3 "#Unique" columns)
    # ------------------------------------------------------------------ #
    def _unique_to_project(self, extractor: Callable) -> dict[str, int]:
        seen_in: dict[object, set[str]] = defaultdict(set)
        for observation in self.observations:
            value = extractor(observation)
            if value is None:
                continue
            seen_in[value].add(observation.project)
        unique: dict[str, int] = defaultdict(int)
        for value, projects in seen_in.items():
            if len(projects) == 1:
                unique[next(iter(projects))] += 1
        return dict(unique)

    def unique_providers_per_project(self) -> dict[str, int]:
        return self._unique_to_project(lambda o: o.provider_key)

    def unique_users_per_project(self) -> dict[str, int]:
        return self._unique_to_project(lambda o: o.user_asn)

    def unique_prefixes_per_project(self) -> dict[str, int]:
        return self._unique_to_project(lambda o: o.prefix)

    # ------------------------------------------------------------------ #
    # Direct feeds (providers with a direct session at a collector)
    # ------------------------------------------------------------------ #
    def direct_feed_fraction(
        self,
        collector_peer_asns: dict[str, set[int]],
        collector_ixps: dict[str, set[str]],
        project: str | None = None,
    ) -> float:
        """Fraction of visible providers with a direct BGP feed.

        ``collector_peer_asns`` maps project -> peer ASNs with sessions;
        ``collector_ixps`` maps project -> IXP names where the project has a
        collector.  An ISP provider has a direct feed when its ASN peers
        with the project; an IXP provider when the project collects at it.
        """
        providers = {
            (o.provider_key, o.provider_asn, o.ixp_name)
            for o in self.observations
            if project is None or o.project == project
        }
        if not providers:
            return 0.0
        if project is None:
            peer_asns = set().union(*collector_peer_asns.values()) if collector_peer_asns else set()
            ixps = set().union(*collector_ixps.values()) if collector_ixps else set()
        else:
            peer_asns = collector_peer_asns.get(project, set())
            ixps = collector_ixps.get(project, set())
        direct = 0
        for _key, provider_asn, ixp_name in providers:
            if ixp_name is not None and ixp_name in ixps:
                direct += 1
            elif provider_asn is not None and provider_asn in peer_asns:
                direct += 1
        return direct / len(providers)

    # ------------------------------------------------------------------ #
    # Per-provider / per-user prefix counts (Figure 5)
    # ------------------------------------------------------------------ #
    def prefixes_per_provider(self) -> dict[str, int]:
        grouped: dict[str, set[Prefix]] = defaultdict(set)
        for observation in self.observations:
            grouped[observation.provider_key].add(observation.prefix)
        return {provider: len(prefixes) for provider, prefixes in grouped.items()}

    def prefixes_per_user(self) -> dict[int, int]:
        grouped: dict[int, set[Prefix]] = defaultdict(set)
        for observation in self.observations:
            if observation.user_asn is not None:
                grouped[observation.user_asn].add(observation.prefix)
        return {user: len(prefixes) for user, prefixes in grouped.items()}

    # ------------------------------------------------------------------ #
    # Detection-method and propagation statistics (Figure 7(c), Section 9)
    # ------------------------------------------------------------------ #
    def detection_method_counts(self) -> dict[DetectionMethod, int]:
        counts: dict[DetectionMethod, int] = defaultdict(int)
        for observation in self.observations:
            counts[observation.detection] += 1
        return dict(counts)

    def as_distance_histogram(self) -> dict[str, int]:
        """Histogram of collector-to-provider AS distances.

        The ``"no-path"`` bucket counts bundled detections where the
        provider is absent from the AS path.
        """
        histogram: dict[str, int] = defaultdict(int)
        for observation in self.observations:
            if observation.as_distance is None:
                histogram["no-path"] += 1
            else:
                histogram[str(observation.as_distance)] += 1
        return dict(histogram)

    def bundled_fraction(self) -> float:
        """Fraction of observations detected only thanks to bundling."""
        if not self.observations:
            return 0.0
        bundled = sum(
            1 for o in self.observations if o.detection is DetectionMethod.BUNDLED
        )
        return bundled / len(self.observations)

    # ------------------------------------------------------------------ #
    # Longitudinal activity (Figure 4)
    # ------------------------------------------------------------------ #
    def daily_activity(
        self, start: float, end: float, horizon: float | None = None
    ) -> list[DailyActivity]:
        """Per-day counts of active providers, users and prefixes.

        An observation is active on a day when its [start, end) interval
        intersects the day; observations still active at the end of the
        stream are treated as ending at ``horizon`` (default: ``end``).
        """
        horizon = end if horizon is None else horizon
        first_day = day_start(start)
        day_count = max(0, int((day_start(end) - first_day) // SECONDS_PER_DAY) + 1)
        providers: list[set[str]] = [set() for _ in range(day_count)]
        users: list[set[int]] = [set() for _ in range(day_count)]
        prefixes: list[set[Prefix]] = [set() for _ in range(day_count)]

        for observation in self.observations:
            obs_start = max(observation.start_time, start)
            obs_end = observation.end_time if observation.end_time is not None else horizon
            obs_end = min(obs_end, end)
            if obs_end < obs_start:
                continue
            first = int((day_start(obs_start) - first_day) // SECONDS_PER_DAY)
            last = int((day_start(obs_end) - first_day) // SECONDS_PER_DAY)
            for day_index in range(max(0, first), min(day_count - 1, last) + 1):
                providers[day_index].add(observation.provider_key)
                if observation.user_asn is not None:
                    users[day_index].add(observation.user_asn)
                prefixes[day_index].add(observation.prefix)

        return [
            DailyActivity(
                day=first_day + index * SECONDS_PER_DAY,
                providers=len(providers[index]),
                users=len(users[index]),
                prefixes=len(prefixes[index]),
            )
            for index in range(day_count)
        ]

    # ------------------------------------------------------------------ #
    # Grouping by an arbitrary provider/user classifier (Tables 2 and 4)
    # ------------------------------------------------------------------ #
    def by_provider_type(
        self, classify: Callable[[BlackholingObservation], str]
    ) -> dict[str, dict[str, int]]:
        """Providers / users / prefixes per provider type.

        ``classify`` maps an observation to a type label (e.g. via PeeringDB
        with CAIDA fallback, IXPs labelled ``"IXP"``).
        """
        providers: dict[str, set[str]] = defaultdict(set)
        users: dict[str, set[int]] = defaultdict(set)
        prefixes: dict[str, set[Prefix]] = defaultdict(set)
        for observation in self.observations:
            label = classify(observation)
            providers[label].add(observation.provider_key)
            if observation.user_asn is not None:
                users[label].add(observation.user_asn)
            prefixes[label].add(observation.prefix)
        return {
            label: {
                "providers": len(providers[label]),
                "users": len(users[label]),
                "prefixes": len(prefixes[label]),
            }
            for label in providers
        }

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.observations)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"InferenceReport(observations={len(self.observations)}, "
            f"providers={len(self.providers())}, users={len(self.users())}, "
            f"prefixes={len(self.prefixes())})"
        )
