"""BGP data cleaning (Section 3, "BGP Data Cleaning").

Before any inference, obviously misconfigured announcements are discarded:
non-routable, private and bogon prefixes (per the Cymru-style bogon list)
and prefixes less specific than /8.  The cleaner counts what it drops so the
analyses can report how much was filtered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.netutils.bogons import BogonList, DEFAULT_BOGONS
from repro.stream.record import StreamElem

__all__ = ["BgpCleaner", "CleaningStats"]


@dataclass
class CleaningStats:
    """Counters of what the cleaner saw and dropped."""

    total: int = 0
    dropped_bogon: int = 0
    dropped_too_coarse: int = 0

    @property
    def kept(self) -> int:
        return self.total - self.dropped_bogon - self.dropped_too_coarse

    @property
    def dropped(self) -> int:
        return self.dropped_bogon + self.dropped_too_coarse


#: Cleaning verdicts: kept, dropped as too coarse, dropped as bogon.
_KEPT, _TOO_COARSE, _BOGON = 0, 1, 2


@dataclass
class BgpCleaner:
    """Filters a BGP elem stream against the bogon list and /8 rule.

    The verdict for a prefix is a pure function of the prefix, and real
    streams repeat the same prefixes constantly (every re-announcement,
    withdrawal and RIB entry), so verdicts are memoised per prefix; the
    counters still count every elem.  The columnar path
    (:meth:`verdict_column`) additionally caches verdicts in a byte table
    indexed by the batch's interned peer-prefix ids, so a whole batch's
    verdicts are one C-level table gather.
    """

    bogons: BogonList = field(default_factory=lambda: DEFAULT_BOGONS)
    stats: CleaningStats = field(default_factory=CleaningStats)
    _verdicts: dict = field(default_factory=dict, repr=False)
    #: Per-interner verdict table: ``_id_table[peer_prefix_id]`` is the
    #: verdict code of that triple's prefix.  Valid only for ``_id_ref``
    #: (ids from a different interner would collide).
    _id_ref: object = field(default=None, repr=False, compare=False)
    _id_table: bytearray = field(
        default_factory=bytearray, repr=False, compare=False
    )

    def accept(self, elem: StreamElem) -> bool:
        """True when the elem survives cleaning (withdrawals always pass
        the bogon check on the withdrawn prefix like announcements do)."""
        self.stats.total += 1
        verdict = self._verdicts.get(elem.prefix)
        if verdict is None:
            if self.bogons.is_too_coarse(elem.prefix):
                verdict = _TOO_COARSE
            elif self.bogons.is_bogon(elem.prefix):
                verdict = _BOGON
            else:
                verdict = _KEPT
            self._verdicts[elem.prefix] = verdict
        if verdict == _TOO_COARSE:
            self.stats.dropped_too_coarse += 1
            return False
        if verdict == _BOGON:
            self.stats.dropped_bogon += 1
            return False
        return True

    def accept_batch(self, prefixes: Iterable) -> list[bool]:
        """Per-row verdicts for one columnar batch's prefix column.

        Equivalent to calling :meth:`accept` once per elem (same memo, same
        counters), but the engine pays one call per batch instead of one
        per elem, and the loop touches only the prefix column.
        """
        stats = self.stats
        verdicts = self._verdicts
        verdict_get = verdicts.get
        bogons = self.bogons
        out: list[bool] = []
        append = out.append
        total = 0
        too_coarse = 0
        bogon = 0
        for prefix in prefixes:
            total += 1
            verdict = verdict_get(prefix)
            if verdict is None:
                if bogons.is_too_coarse(prefix):
                    verdict = _TOO_COARSE
                elif bogons.is_bogon(prefix):
                    verdict = _BOGON
                else:
                    verdict = _KEPT
                verdicts[prefix] = verdict
            if verdict == _KEPT:
                append(True)
            elif verdict == _TOO_COARSE:
                too_coarse += 1
                append(False)
            else:
                bogon += 1
                append(False)
        stats.total += total
        stats.dropped_too_coarse += too_coarse
        stats.dropped_bogon += bogon
        return out

    def verdict_column(self, batch) -> bytearray:
        """Per-row verdict codes for one columnar batch, as a ``bytearray``.

        Codes are ``0`` (kept), ``1`` (dropped: less specific than /8) and
        ``2`` (dropped: bogon).  Verdicts are computed once per *unique*
        interned peer-prefix id -- the collision-free integer form of the
        prefix key -- and cached in a byte table, so the per-row work is a
        single C-level ``map`` gather over the ``peer_prefix_ids`` column
        plus C-level ``count`` calls for the counters.  Counter updates are
        identical to calling :meth:`accept` once per elem.
        """
        interner = batch.peer_interner
        table = self._id_table
        if self._id_ref is not interner:
            table = self._id_table = bytearray()
            self._id_ref = interner
        triples = interner.triples
        if len(table) < len(triples):
            # New triples since the last batch: resolve their prefixes
            # through the per-prefix memo (one bogon check per new prefix).
            verdicts = self._verdicts
            verdict_get = verdicts.get
            bogons = self.bogons
            append = table.append
            for triple in triples[len(table):]:
                prefix = triple[2]
                verdict = verdict_get(prefix)
                if verdict is None:
                    if bogons.is_too_coarse(prefix):
                        verdict = _TOO_COARSE
                    elif bogons.is_bogon(prefix):
                        verdict = _BOGON
                    else:
                        verdict = _KEPT
                    verdicts[prefix] = verdict
                append(verdict)
        out = bytearray(map(table.__getitem__, batch.peer_prefix_ids))
        stats = self.stats
        stats.total += len(out)
        stats.dropped_too_coarse += out.count(_TOO_COARSE)
        stats.dropped_bogon += out.count(_BOGON)
        return out

    def clean(self, elems: Iterable[StreamElem]) -> Iterator[StreamElem]:
        """Yield only the elems that survive cleaning."""
        for elem in elems:
            if self.accept(elem):
                yield elem
