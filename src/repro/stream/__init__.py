"""BGPStream-like streaming layer.

The paper consumes RIPE RIS and RouteViews through the BGPStream API and
PCH/CDN data through custom parsers; all four are then processed as one
time-ordered stream of *elems*.  This package reproduces that layer:

* :mod:`repro.stream.record` -- :class:`StreamElem`, the normalised view of
  one announcement/withdrawal as seen at one collector peer.
* :mod:`repro.stream.batch` -- :class:`ElemBatch`, the columnar
  (struct-of-arrays) chunked view of the stream the hot consumers operate
  on: parallel columns of timestamps, elem-type codes, interned strings,
  prefix shard keys and interned community-set ids.
* :mod:`repro.stream.source` -- per-collector sources backed by in-memory
  message lists or MRT byte archives (RIB snapshot + update stream).
* :mod:`repro.stream.merger` -- the multi-source, time-ordered merge.
* :mod:`repro.stream.filters` -- composable elem filters (time window,
  collectors, prefix specificity, community match).
"""

from repro.stream.batch import (
    ColumnBuilder,
    CommunityInterner,
    ElemBatch,
    LazyRowColumn,
    PeerPrefixInterner,
    batch_elems,
    batch_specs,
    prefix_shard_key,
    row_spec_sort_key,
)
from repro.stream.filters import (
    CollectorFilter,
    CommunityFilter,
    ElemFilter,
    PrefixLengthFilter,
    TimeWindowFilter,
    compose_filters,
)
from repro.stream.merger import BgpStream, merge_sources
from repro.stream.record import ElemType, StreamElem
from repro.stream.source import CollectorSource, MrtSource, dump_elems, update_elems

__all__ = [
    "BgpStream",
    "CollectorFilter",
    "ColumnBuilder",
    "CommunityInterner",
    "ElemBatch",
    "LazyRowColumn",
    "PeerPrefixInterner",
    "batch_elems",
    "batch_specs",
    "prefix_shard_key",
    "row_spec_sort_key",
    "CollectorSource",
    "CommunityFilter",
    "ElemFilter",
    "ElemType",
    "MrtSource",
    "PrefixLengthFilter",
    "StreamElem",
    "TimeWindowFilter",
    "compose_filters",
    "dump_elems",
    "merge_sources",
    "update_elems",
]
