"""Columnar elem batches (struct-of-arrays view of the stream).

A :class:`ElemBatch` groups a chunk of consecutive :class:`StreamElem`\\ s
into parallel columns backed by typed buffers -- ``array('d')`` timestamps,
``array('B')`` elem-type codes and prefix lengths, ``array('Q')`` prefix
shard keys and interned-int id columns -- plus row-parallel lists for the
interned collector/peer strings and the prefix objects.  The hot consumers
(the inference engine's ``process_batch`` kernel, ``CommunityUsageStats
.observe_batch``, the execution plan's batch sharding) operate on the
columns directly, so per-elem Python dispatch, community matching, cleaning
verdicts and shard hashing amortise over whole batches:

* community sets are interned into dense integer ids by a
  :class:`CommunityInterner`, so dictionary matching and usage accounting
  run once per *unique* community set, not once per elem;
* ``(collector, peer_ip, prefix)`` triples are interned into dense integer
  ids by a :class:`PeerPrefixInterner`, so the engine keys its active-state
  index on plain ints and the cleaner memoises verdicts per unique id --
  both via byte tables indexed at C speed, with no 64-bit-key collision
  hazard (ids come from exact dict interning, not hashing);
* prefixes carry their :func:`prefix_shard_key` in a parallel ``array('Q')``
  column, so sharding a batch is C-level table lookups over the key buffer
  instead of a multiplicative hash over prefix fields per elem;
* the original elems stay available as a row column, so
  ``for elem in batch`` remains a drop-in elem-at-a-time view and any
  consumer that does not understand batches keeps working unchanged.

Batches are built in configurable chunks by the sources and the merger
(:meth:`~repro.stream.merger.BgpStream.batches`,
:meth:`~repro.stream.source.CollectorSource.batches`) or from any elem
iterable via :func:`batch_elems`.

Two ingestion refinements keep batch *construction* as column-native as
batch *processing*:

* **Decoder-to-column building.**  Sources emit *row specs* -- plain
  tuples of the columnar field values plus a deferred ``StreamElem``
  thunk -- and a :class:`ColumnBuilder` assembles the typed columns
  straight from them (:func:`batch_specs`).  The ``elems`` column of such
  a batch is a :class:`LazyRowColumn`: a ``StreamElem`` object is only
  constructed when a consumer actually indexes the row (the engine kernel
  does so solely for tagged announcements), and ``rows_materialised``
  counts how few rows ever existed as objects.
* **Zero-copy contiguous selects.**  :meth:`ElemBatch.select` detects
  index sets that form one contiguous ascending run -- the single-shard
  and sorted-run splits of the execution plan -- and slices the typed
  columns through ``memoryview`` views (:meth:`ElemBatch.select_run`)
  instead of gathering row by row; lazy rows are never forced by a split
  (sub-batches share the parent's row cache and counter).
"""

from __future__ import annotations

from array import array
from itertools import islice
from operator import eq, itemgetter
from sys import intern
from typing import Callable, Iterable, Iterator, Sequence

from repro.bgp.community import CommunitySet
from repro.netutils.prefixes import Prefix
from repro.stream.record import ElemType, StreamElem

__all__ = [
    "ColumnBuilder",
    "CommunityInterner",
    "ElemBatch",
    "LazyRowColumn",
    "PeerPrefixInterner",
    "RowSpec",
    "TYPE_ANNOUNCEMENT",
    "TYPE_RIB",
    "TYPE_WITHDRAWAL",
    "batch_elems",
    "batch_specs",
    "prefix_shard_key",
    "row_spec_sort_key",
    "select_counters",
    "spec_timestamp",
]

#: Elem-type codes of the ``type_codes`` column (cheap int compares in the
#: dispatch loops instead of enum identity checks).
TYPE_RIB = 0
TYPE_ANNOUNCEMENT = 1
TYPE_WITHDRAWAL = 2

_TYPE_CODES = {
    ElemType.RIB: TYPE_RIB,
    ElemType.ANNOUNCEMENT: TYPE_ANNOUNCEMENT,
    ElemType.WITHDRAWAL: TYPE_WITHDRAWAL,
}

#: type code -> ``ElemType.value`` string, for spec-level sort keys that
#: must order exactly like :meth:`StreamElem.sort_key`.
_TYPE_VALUES = {code: elem_type.value for elem_type, code in _TYPE_CODES.items()}

#: One not-yet-materialised batch row: the columnar field values plus a
#: zero-argument thunk that builds the :class:`StreamElem` on demand.
#: Layout: ``(timestamp, type_code, project, collector, peer_ip, prefix,
#: communities, make_row)``.  Sources emit these instead of elems so the
#: typed columns can be assembled without constructing a row object.
RowSpec = tuple[
    float, int, str, str, str, Prefix, CommunitySet, Callable[[], StreamElem]
]

#: ``spec[0]`` -- the timestamp, the update-merge ordering key.
spec_timestamp = itemgetter(0)


def row_spec_sort_key(spec: RowSpec) -> tuple:
    """The :meth:`StreamElem.sort_key` of a spec, without building the row.

    Field for field this is ``(timestamp, project, collector, peer_ip,
    prefix, elem_type.value)``, so sorting or heap-merging specs with this
    key yields exactly the order of sorting the materialised elems with
    ``StreamElem.sort_key``.
    """
    return (spec[0], spec[2], spec[3], spec[4], spec[5], _TYPE_VALUES[spec[1]])

#: 64-bit mask of the shard-key mixing arithmetic (kept in lockstep with
#: :func:`repro.exec.plan.shard_of`, which consumes these keys).
_KEY_MASK = (1 << 64) - 1


def prefix_shard_key(prefix: Prefix) -> int:
    """The shard-hash input of a prefix, as pure integer arithmetic.

    This is the "prefix int" of the columnar layout: :func:`repro.exec.plan
    .shard_of` finishes the Knuth multiplicative hash over exactly this
    value, so a batch's precomputed key column yields the same shard
    assignment as hashing the prefix objects elem by elem.
    """
    return ((prefix.network * 31 + prefix.length) * 127 + prefix.family) & _KEY_MASK


class CommunityInterner:
    """Dense integer ids for distinct :class:`CommunitySet` values.

    Streams repeat the same community sets constantly (every
    re-announcement, every RIB entry of a provider), so consumers memoise
    their per-set work -- dictionary tag matching, documented-membership
    flags -- keyed by the interned id.  Ids are only comparable within one
    interner; batch consumers key their memos on the interner instance and
    reset when a batch from a different interner arrives.
    """

    __slots__ = ("_ids", "sets")

    def __init__(self) -> None:
        self._ids: dict[CommunitySet, int] = {}
        #: id -> canonical CommunitySet (the first equal set seen).
        self.sets: list[CommunitySet] = []

    def intern(self, communities: CommunitySet) -> int:
        found = self._ids.get(communities)
        if found is None:
            found = self._ids[communities] = len(self.sets)
            self.sets.append(communities)
        return found

    def __len__(self) -> int:
        return len(self.sets)


class PeerPrefixInterner:
    """Dense integer ids for distinct ``(collector, peer_ip, prefix)`` triples.

    The engine keys all of its active-observation state on these triples;
    interning them once at batch-construction time turns the per-row state
    probes of the batch kernel into byte-table lookups over an int column.
    Ids are append-only and interner-scoped, exactly like
    :class:`CommunityInterner` ids; they are exact (dict-interned), so two
    distinct triples can never share an id.
    """

    __slots__ = ("_ids", "triples")

    def __init__(self) -> None:
        self._ids: dict[tuple[str, str, Prefix], int] = {}
        #: id -> canonical (collector, peer_ip, prefix) triple.
        self.triples: list[tuple[str, str, Prefix]] = []

    def intern(self, triple: tuple[str, str, Prefix]) -> int:
        found = self._ids.get(triple)
        if found is None:
            found = self._ids[triple] = len(self.triples)
            self.triples.append(triple)
        return found

    def __len__(self) -> int:
        return len(self.triples)


class LazyRowColumn:
    """The ``elems`` column of a builder-made batch: rows built on demand.

    Holds one provider thunk per row; ``column[i]`` invokes the thunk on
    first access, caches the :class:`StreamElem`, and bumps
    :attr:`materialised`.  Iteration materialises every row (that is the
    elem-at-a-time compatibility view); the column-native consumers never
    iterate it, they index only the rows they actually need.
    """

    __slots__ = ("_providers", "_rows", "materialised")

    def __init__(self, providers: list[Callable[[], StreamElem]]) -> None:
        self._providers = providers
        self._rows: list[StreamElem | None] = [None] * len(providers)
        #: Count of provider invocations (rows that exist as objects).
        self.materialised = 0

    def __len__(self) -> int:
        return len(self._providers)

    def __getitem__(self, index: int) -> StreamElem:
        row = self._rows[index]
        if row is None:
            row = self._rows[index] = self._providers[index]()
            self.materialised += 1
        return row

    def __iter__(self) -> Iterator[StreamElem]:
        for index in range(len(self._providers)):
            yield self[index]

    def view(self, indices: Sequence[int]) -> "_LazyRowView":
        """A sub-column of the given row indices, sharing this cache.

        The view holds only the index sequence (a ``range`` for contiguous
        runs -- zero-copy); no row is materialised by creating it.
        """
        return _LazyRowView(self, indices)


class _LazyRowView:
    """A reindexed window onto a :class:`LazyRowColumn`.

    Sub-batches made by :meth:`ElemBatch.select` use this so splitting a
    lazy batch never forces rows, and rows materialised through any view
    land in (and count against) the parent column's single cache.
    """

    __slots__ = ("_parent", "_indices")

    def __init__(
        self, parent: "LazyRowColumn | _LazyRowView", indices: Sequence[int]
    ) -> None:
        self._parent = parent
        self._indices = indices

    @property
    def materialised(self) -> int:
        return self._parent.materialised

    def __len__(self) -> int:
        return len(self._indices)

    def __getitem__(self, index: int) -> StreamElem:
        return self._parent[self._indices[index]]

    def __iter__(self) -> Iterator[StreamElem]:
        parent = self._parent
        for index in self._indices:
            yield parent[index]

    def view(self, indices: Sequence[int]) -> "_LazyRowView":
        own = self._indices
        if isinstance(indices, range) and isinstance(own, range):
            composed: Sequence[int] = own[indices.start : indices.stop]
        else:
            composed = [own[index] for index in indices]
        return _LazyRowView(self._parent, composed)


class SelectCounters:
    """Per-process diagnostics of the :meth:`ElemBatch.select` fast path.

    ``zero_copy_selects`` counts sub-batches sliced through ``memoryview``
    column views (contiguous index runs); ``gather_selects`` counts the
    per-index gather fallback.  Benchmarks and the CI smoke read the deltas
    to prove the zero-copy branch is actually taken -- the counters carry
    no semantics and are never merged across worker processes.
    """

    __slots__ = ("zero_copy_selects", "gather_selects")

    def __init__(self) -> None:
        self.zero_copy_selects = 0
        self.gather_selects = 0


#: Module-wide select diagnostics (per process; forked workers see a copy).
select_counters = SelectCounters()


def _column_view(column, start: int, stop: int):
    """Zero-copy slice of a typed column (re-slices existing views)."""
    if type(column) is not memoryview:
        column = memoryview(column)
    return column[start:stop]


class ElemBatch:
    """One chunk of the elem stream in columnar (struct-of-arrays) form.

    All columns are parallel buffers of equal length; ``elems[i]`` is the
    row view of column index ``i``.  Batches are immutable by convention --
    consumers only read the columns.

    Column types are duck-shaped, not fixed: typed columns are ``array``
    objects on freshly built batches and zero-copy ``memoryview`` slices on
    contiguous sub-batches; the ``elems`` column is a plain list on eager
    batches (:meth:`from_elems`) and a :class:`LazyRowColumn` (or view) on
    builder-made ones.  Every consumer indexes/iterates them identically.
    """

    __slots__ = (
        "elems",
        "timestamps",
        "type_codes",
        "collectors",
        "peer_ips",
        "prefixes",
        "prefix_lengths",
        "prefix_keys",
        "community_ids",
        "peer_prefix_ids",
        "interner",
        "peer_interner",
    )

    def __init__(
        self,
        elems: list[StreamElem],
        timestamps: array,
        type_codes: array,
        collectors: list[str],
        peer_ips: list[str],
        prefixes: list[Prefix],
        prefix_lengths: array,
        prefix_keys: array,
        community_ids: array,
        peer_prefix_ids: array,
        interner: CommunityInterner,
        peer_interner: PeerPrefixInterner,
    ) -> None:
        self.elems = elems
        self.timestamps = timestamps
        self.type_codes = type_codes
        self.collectors = collectors
        self.peer_ips = peer_ips
        self.prefixes = prefixes
        self.prefix_lengths = prefix_lengths
        self.prefix_keys = prefix_keys
        self.community_ids = community_ids
        self.peer_prefix_ids = peer_prefix_ids
        self.interner = interner
        self.peer_interner = peer_interner

    # ------------------------------------------------------------------ #
    @classmethod
    def from_elems(
        cls,
        elems: Iterable[StreamElem],
        interner: CommunityInterner | None = None,
        peer_interner: PeerPrefixInterner | None = None,
    ) -> "ElemBatch":
        """Columnarise a chunk of elems.

        Pass shared interners when building several batches of one stream
        so community and peer-prefix ids (and the consumers' memos and
        byte tables keyed on them) stay stable across the whole pass.
        """
        rows = list(elems)
        interner = interner if interner is not None else CommunityInterner()
        peer_interner = (
            peer_interner if peer_interner is not None else PeerPrefixInterner()
        )
        type_codes = _TYPE_CODES
        intern_set = interner.intern
        intern_peer = peer_interner.intern
        prefixes = [elem.prefix for elem in rows]
        return cls(
            elems=rows,
            timestamps=array("d", [elem.timestamp for elem in rows]),
            type_codes=array("B", [type_codes[elem.elem_type] for elem in rows]),
            collectors=[intern(elem.collector) for elem in rows],
            peer_ips=[intern(elem.peer_ip) for elem in rows],
            prefixes=prefixes,
            prefix_lengths=array("B", [prefix.length for prefix in prefixes]),
            prefix_keys=array("Q", map(prefix_shard_key, prefixes)),
            community_ids=array(
                "Q", [intern_set(elem.communities) for elem in rows]
            ),
            peer_prefix_ids=array(
                "Q",
                [
                    intern_peer((elem.collector, elem.peer_ip, elem.prefix))
                    for elem in rows
                ],
            ),
            interner=interner,
            peer_interner=peer_interner,
        )

    def select(self, indices: Sequence[int]) -> "ElemBatch":
        """A sub-batch of the given row indices (shares the interners).

        Used by the execution plan to shard one batch into per-worker
        sub-batches via the precomputed ``prefix_keys`` column.  Indices
        forming one contiguous ascending run -- the common single-shard and
        sorted-run case -- are served by :meth:`select_run`, which slices
        the typed columns through zero-copy ``memoryview`` views.  Otherwise
        one index buffer drives every column: each gather is a C-level
        ``map(column.__getitem__, indices)`` pass, so the split costs O(1)
        Python frames per column rather than one comprehension frame per
        row per column.  Lazy row columns are never forced either way --
        sub-batches get a reindexing view over the parent's row cache.
        """
        count = len(indices)
        if count:
            first = indices[0]
            if indices[count - 1] - first == count - 1 and (
                (isinstance(indices, range) and indices.step == 1)
                or all(map(eq, indices, range(first, first + count)))
            ):
                return self.select_run(first, first + count)
        select_counters.gather_selects += 1
        elems = self.elems
        view = getattr(elems, "view", None)
        sub_elems = (
            list(map(elems.__getitem__, indices)) if view is None else view(indices)
        )
        return ElemBatch(
            elems=sub_elems,
            timestamps=array("d", map(self.timestamps.__getitem__, indices)),
            type_codes=array("B", map(self.type_codes.__getitem__, indices)),
            collectors=list(map(self.collectors.__getitem__, indices)),
            peer_ips=list(map(self.peer_ips.__getitem__, indices)),
            prefixes=list(map(self.prefixes.__getitem__, indices)),
            prefix_lengths=array("B", map(self.prefix_lengths.__getitem__, indices)),
            prefix_keys=array("Q", map(self.prefix_keys.__getitem__, indices)),
            community_ids=array("Q", map(self.community_ids.__getitem__, indices)),
            peer_prefix_ids=array(
                "Q", map(self.peer_prefix_ids.__getitem__, indices)
            ),
            interner=self.interner,
            peer_interner=self.peer_interner,
        )

    def select_run(self, start: int, stop: int) -> "ElemBatch":
        """Zero-copy sub-batch of the contiguous row run ``[start, stop)``.

        Typed columns become ``memoryview`` slices over the parent buffers
        (no bytes move), list columns use plain list slices, and a lazy
        ``elems`` column becomes a range view sharing the parent's cache --
        no row is materialised by taking the run.
        """
        select_counters.zero_copy_selects += 1
        elems = self.elems
        view = getattr(elems, "view", None)
        sub_elems = (
            elems[start:stop] if view is None else view(range(start, stop))
        )
        return ElemBatch(
            elems=sub_elems,
            timestamps=_column_view(self.timestamps, start, stop),
            type_codes=_column_view(self.type_codes, start, stop),
            collectors=self.collectors[start:stop],
            peer_ips=self.peer_ips[start:stop],
            prefixes=self.prefixes[start:stop],
            prefix_lengths=_column_view(self.prefix_lengths, start, stop),
            prefix_keys=_column_view(self.prefix_keys, start, stop),
            community_ids=_column_view(self.community_ids, start, stop),
            peer_prefix_ids=_column_view(self.peer_prefix_ids, start, stop),
            interner=self.interner,
            peer_interner=self.peer_interner,
        )

    @property
    def rows_materialised(self) -> int:
        """How many of this batch's rows exist as ``StreamElem`` objects.

        Lazy batches report their provider-invocation count (shared with
        every sub-view of the same parent column); eager batches report
        ``len(self)`` -- all their rows were constructed up front.
        """
        elems = self.elems
        materialised = getattr(elems, "materialised", None)
        return len(elems) if materialised is None else materialised

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.elems)

    def __iter__(self) -> Iterator[StreamElem]:
        """The elem-at-a-time view: iterate the original rows."""
        return iter(self.elems)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ElemBatch(len={len(self.elems)}, interned={len(self.interner)}, "
            f"peer_prefixes={len(self.peer_interner)})"
        )


def batch_elems(
    elems: Iterable[StreamElem],
    batch_size: int,
    interner: CommunityInterner | None = None,
    peer_interner: PeerPrefixInterner | None = None,
) -> Iterator[ElemBatch]:
    """Chunk an elem iterable into :class:`ElemBatch` es of ``batch_size``.

    The chunk boundaries equal ``itertools.islice`` chunking of the same
    iterable, so batched and elem-at-a-time consumers see the elems in
    exactly the same order.  One interner pair (shared or fresh) serves
    every batch of the iteration.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    interner = interner if interner is not None else CommunityInterner()
    peer_interner = (
        peer_interner if peer_interner is not None else PeerPrefixInterner()
    )
    iterator = iter(elems)
    while chunk := list(islice(iterator, batch_size)):
        yield ElemBatch.from_elems(chunk, interner, peer_interner)


class ColumnBuilder:
    """Append-based assembly of :class:`ElemBatch` columns from row specs.

    The decoder-to-column path: sources :meth:`append` / :meth:`extend`
    :data:`RowSpec` tuples as they decode, and :meth:`build` snapshots the
    pending specs into one batch -- typed columns filled by bulk
    comprehensions over the spec fields, the ``elems`` column a
    :class:`LazyRowColumn` over the deferred row thunks.  No
    ``StreamElem`` is constructed at build time.  One builder carries one
    interner pair, so every batch it builds shares stable community and
    peer-prefix ids.
    """

    __slots__ = ("interner", "peer_interner", "_specs")

    def __init__(
        self,
        interner: CommunityInterner | None = None,
        peer_interner: PeerPrefixInterner | None = None,
    ) -> None:
        self.interner = interner if interner is not None else CommunityInterner()
        self.peer_interner = (
            peer_interner if peer_interner is not None else PeerPrefixInterner()
        )
        self._specs: list[RowSpec] = []

    def append(self, spec: RowSpec) -> None:
        self._specs.append(spec)

    def extend(self, specs: Iterable[RowSpec]) -> None:
        self._specs.extend(specs)

    def __len__(self) -> int:
        return len(self._specs)

    def build(self) -> ElemBatch:
        """Drain the pending specs into one lazy-row batch."""
        specs, self._specs = self._specs, []
        intern_set = self.interner.intern
        intern_peer = self.peer_interner.intern
        prefixes = [spec[5] for spec in specs]
        return ElemBatch(
            elems=LazyRowColumn([spec[7] for spec in specs]),
            timestamps=array("d", [spec[0] for spec in specs]),
            type_codes=array("B", [spec[1] for spec in specs]),
            collectors=[intern(spec[3]) for spec in specs],
            peer_ips=[intern(spec[4]) for spec in specs],
            prefixes=prefixes,
            prefix_lengths=array("B", [prefix.length for prefix in prefixes]),
            prefix_keys=array("Q", map(prefix_shard_key, prefixes)),
            community_ids=array("Q", [intern_set(spec[6]) for spec in specs]),
            peer_prefix_ids=array(
                "Q",
                [intern_peer((spec[3], spec[4], spec[5])) for spec in specs],
            ),
            interner=self.interner,
            peer_interner=self.peer_interner,
        )


def batch_specs(
    specs: Iterable[RowSpec],
    batch_size: int,
    interner: CommunityInterner | None = None,
    peer_interner: PeerPrefixInterner | None = None,
) -> Iterator[ElemBatch]:
    """Chunk a row-spec iterable into lazy-row batches of ``batch_size``.

    The spec-level twin of :func:`batch_elems`: identical ``islice``
    chunk boundaries and one shared interner pair across the iteration,
    but rows stay unmaterialised until a consumer indexes them.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    builder = ColumnBuilder(interner, peer_interner)
    iterator = iter(specs)
    while chunk := list(islice(iterator, batch_size)):
        builder.extend(chunk)
        yield builder.build()
