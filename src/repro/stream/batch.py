"""Columnar elem batches (struct-of-arrays view of the stream).

A :class:`ElemBatch` groups a chunk of consecutive :class:`StreamElem`\\ s
into parallel columns -- timestamps, elem-type codes, interned collector and
peer strings, prefixes with their precomputed shard keys, and interned
community-set ids.  The hot consumers (the inference engine's
``process_batch``, ``CommunityUsageStats.observe_batch``, the execution
plan's batch sharding) operate on the columns directly, so per-elem Python
dispatch, community matching and shard hashing amortise over whole batches:

* community sets are interned into dense integer ids by a
  :class:`CommunityInterner`, so dictionary matching and usage accounting
  run once per *unique* community set, not once per elem;
* prefixes carry their :func:`prefix_shard_key` in a parallel int column,
  so sharding a batch is one memoised int lookup per elem instead of a
  multiplicative hash over prefix fields;
* the original elems stay available as a row column, so
  ``for elem in batch`` remains a drop-in elem-at-a-time view and any
  consumer that does not understand batches keeps working unchanged.

Batches are built in configurable chunks by the sources and the merger
(:meth:`~repro.stream.merger.BgpStream.batches`,
:meth:`~repro.stream.source.CollectorSource.batches`) or from any elem
iterable via :func:`batch_elems`.
"""

from __future__ import annotations

from itertools import islice
from sys import intern
from typing import Iterable, Iterator

from repro.bgp.community import CommunitySet
from repro.netutils.prefixes import Prefix
from repro.stream.record import ElemType, StreamElem

__all__ = [
    "CommunityInterner",
    "ElemBatch",
    "TYPE_ANNOUNCEMENT",
    "TYPE_RIB",
    "TYPE_WITHDRAWAL",
    "batch_elems",
    "prefix_shard_key",
]

#: Elem-type codes of the ``type_codes`` column (cheap int compares in the
#: dispatch loops instead of enum identity checks).
TYPE_RIB = 0
TYPE_ANNOUNCEMENT = 1
TYPE_WITHDRAWAL = 2

_TYPE_CODES = {
    ElemType.RIB: TYPE_RIB,
    ElemType.ANNOUNCEMENT: TYPE_ANNOUNCEMENT,
    ElemType.WITHDRAWAL: TYPE_WITHDRAWAL,
}

#: 64-bit mask of the shard-key mixing arithmetic (kept in lockstep with
#: :func:`repro.exec.plan.shard_of`, which consumes these keys).
_KEY_MASK = (1 << 64) - 1


def prefix_shard_key(prefix: Prefix) -> int:
    """The shard-hash input of a prefix, as pure integer arithmetic.

    This is the "prefix int" of the columnar layout: :func:`repro.exec.plan
    .shard_of` finishes the Knuth multiplicative hash over exactly this
    value, so a batch's precomputed key column yields the same shard
    assignment as hashing the prefix objects elem by elem.
    """
    return ((prefix.network * 31 + prefix.length) * 127 + prefix.family) & _KEY_MASK


class CommunityInterner:
    """Dense integer ids for distinct :class:`CommunitySet` values.

    Streams repeat the same community sets constantly (every
    re-announcement, every RIB entry of a provider), so consumers memoise
    their per-set work -- dictionary tag matching, documented-membership
    flags -- keyed by the interned id.  Ids are only comparable within one
    interner; batch consumers key their memos on the interner instance and
    reset when a batch from a different interner arrives.
    """

    __slots__ = ("_ids", "sets")

    def __init__(self) -> None:
        self._ids: dict[CommunitySet, int] = {}
        #: id -> canonical CommunitySet (the first equal set seen).
        self.sets: list[CommunitySet] = []

    def intern(self, communities: CommunitySet) -> int:
        found = self._ids.get(communities)
        if found is None:
            found = self._ids[communities] = len(self.sets)
            self.sets.append(communities)
        return found

    def __len__(self) -> int:
        return len(self.sets)


class ElemBatch:
    """One chunk of the elem stream in columnar (struct-of-arrays) form.

    All columns are parallel lists of equal length; ``elems[i]`` is the row
    view of column index ``i``.  Batches are immutable by convention --
    consumers only read the columns.
    """

    __slots__ = (
        "elems",
        "timestamps",
        "type_codes",
        "collectors",
        "peer_ips",
        "prefixes",
        "prefix_keys",
        "community_ids",
        "interner",
    )

    def __init__(
        self,
        elems: list[StreamElem],
        timestamps: list[float],
        type_codes: list[int],
        collectors: list[str],
        peer_ips: list[str],
        prefixes: list[Prefix],
        prefix_keys: list[int],
        community_ids: list[int],
        interner: CommunityInterner,
    ) -> None:
        self.elems = elems
        self.timestamps = timestamps
        self.type_codes = type_codes
        self.collectors = collectors
        self.peer_ips = peer_ips
        self.prefixes = prefixes
        self.prefix_keys = prefix_keys
        self.community_ids = community_ids
        self.interner = interner

    # ------------------------------------------------------------------ #
    @classmethod
    def from_elems(
        cls,
        elems: Iterable[StreamElem],
        interner: CommunityInterner | None = None,
    ) -> "ElemBatch":
        """Columnarise a chunk of elems.

        Pass a shared ``interner`` when building several batches of one
        stream so community ids (and the consumers' memos keyed on them)
        stay stable across the whole pass.
        """
        rows = list(elems)
        interner = interner if interner is not None else CommunityInterner()
        type_codes = _TYPE_CODES
        intern_set = interner.intern
        return cls(
            elems=rows,
            timestamps=[elem.timestamp for elem in rows],
            type_codes=[type_codes[elem.elem_type] for elem in rows],
            collectors=[intern(elem.collector) for elem in rows],
            peer_ips=[intern(elem.peer_ip) for elem in rows],
            prefixes=[elem.prefix for elem in rows],
            prefix_keys=[prefix_shard_key(elem.prefix) for elem in rows],
            community_ids=[intern_set(elem.communities) for elem in rows],
            interner=interner,
        )

    def select(self, indices: list[int]) -> "ElemBatch":
        """A sub-batch of the given row indices (shares the interner).

        Used by the execution plan to shard one batch into per-worker
        sub-batches via the precomputed ``prefix_keys`` column.
        """
        elems = self.elems
        timestamps = self.timestamps
        type_codes = self.type_codes
        collectors = self.collectors
        peer_ips = self.peer_ips
        prefixes = self.prefixes
        prefix_keys = self.prefix_keys
        community_ids = self.community_ids
        return ElemBatch(
            elems=[elems[i] for i in indices],
            timestamps=[timestamps[i] for i in indices],
            type_codes=[type_codes[i] for i in indices],
            collectors=[collectors[i] for i in indices],
            peer_ips=[peer_ips[i] for i in indices],
            prefixes=[prefixes[i] for i in indices],
            prefix_keys=[prefix_keys[i] for i in indices],
            community_ids=[community_ids[i] for i in indices],
            interner=self.interner,
        )

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.elems)

    def __iter__(self) -> Iterator[StreamElem]:
        """The elem-at-a-time view: iterate the original rows."""
        return iter(self.elems)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ElemBatch(len={len(self.elems)}, interned={len(self.interner)})"


def batch_elems(
    elems: Iterable[StreamElem],
    batch_size: int,
    interner: CommunityInterner | None = None,
) -> Iterator[ElemBatch]:
    """Chunk an elem iterable into :class:`ElemBatch` es of ``batch_size``.

    The chunk boundaries equal ``itertools.islice`` chunking of the same
    iterable, so batched and elem-at-a-time consumers see the elems in
    exactly the same order.  One interner (shared or fresh) serves every
    batch of the iteration.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    interner = interner if interner is not None else CommunityInterner()
    iterator = iter(elems)
    while chunk := list(islice(iterator, batch_size)):
        yield ElemBatch.from_elems(chunk, interner)
