"""Columnar elem batches (struct-of-arrays view of the stream).

A :class:`ElemBatch` groups a chunk of consecutive :class:`StreamElem`\\ s
into parallel columns backed by typed buffers -- ``array('d')`` timestamps,
``array('B')`` elem-type codes and prefix lengths, ``array('Q')`` prefix
shard keys and interned-int id columns -- plus row-parallel lists for the
interned collector/peer strings and the prefix objects.  The hot consumers
(the inference engine's ``process_batch`` kernel, ``CommunityUsageStats
.observe_batch``, the execution plan's batch sharding) operate on the
columns directly, so per-elem Python dispatch, community matching, cleaning
verdicts and shard hashing amortise over whole batches:

* community sets are interned into dense integer ids by a
  :class:`CommunityInterner`, so dictionary matching and usage accounting
  run once per *unique* community set, not once per elem;
* ``(collector, peer_ip, prefix)`` triples are interned into dense integer
  ids by a :class:`PeerPrefixInterner`, so the engine keys its active-state
  index on plain ints and the cleaner memoises verdicts per unique id --
  both via byte tables indexed at C speed, with no 64-bit-key collision
  hazard (ids come from exact dict interning, not hashing);
* prefixes carry their :func:`prefix_shard_key` in a parallel ``array('Q')``
  column, so sharding a batch is C-level table lookups over the key buffer
  instead of a multiplicative hash over prefix fields per elem;
* the original elems stay available as a row column, so
  ``for elem in batch`` remains a drop-in elem-at-a-time view and any
  consumer that does not understand batches keeps working unchanged.

Batches are built in configurable chunks by the sources and the merger
(:meth:`~repro.stream.merger.BgpStream.batches`,
:meth:`~repro.stream.source.CollectorSource.batches`) or from any elem
iterable via :func:`batch_elems`.
"""

from __future__ import annotations

from array import array
from itertools import islice
from sys import intern
from typing import Iterable, Iterator

from repro.bgp.community import CommunitySet
from repro.netutils.prefixes import Prefix
from repro.stream.record import ElemType, StreamElem

__all__ = [
    "CommunityInterner",
    "ElemBatch",
    "PeerPrefixInterner",
    "TYPE_ANNOUNCEMENT",
    "TYPE_RIB",
    "TYPE_WITHDRAWAL",
    "batch_elems",
    "prefix_shard_key",
]

#: Elem-type codes of the ``type_codes`` column (cheap int compares in the
#: dispatch loops instead of enum identity checks).
TYPE_RIB = 0
TYPE_ANNOUNCEMENT = 1
TYPE_WITHDRAWAL = 2

_TYPE_CODES = {
    ElemType.RIB: TYPE_RIB,
    ElemType.ANNOUNCEMENT: TYPE_ANNOUNCEMENT,
    ElemType.WITHDRAWAL: TYPE_WITHDRAWAL,
}

#: 64-bit mask of the shard-key mixing arithmetic (kept in lockstep with
#: :func:`repro.exec.plan.shard_of`, which consumes these keys).
_KEY_MASK = (1 << 64) - 1


def prefix_shard_key(prefix: Prefix) -> int:
    """The shard-hash input of a prefix, as pure integer arithmetic.

    This is the "prefix int" of the columnar layout: :func:`repro.exec.plan
    .shard_of` finishes the Knuth multiplicative hash over exactly this
    value, so a batch's precomputed key column yields the same shard
    assignment as hashing the prefix objects elem by elem.
    """
    return ((prefix.network * 31 + prefix.length) * 127 + prefix.family) & _KEY_MASK


class CommunityInterner:
    """Dense integer ids for distinct :class:`CommunitySet` values.

    Streams repeat the same community sets constantly (every
    re-announcement, every RIB entry of a provider), so consumers memoise
    their per-set work -- dictionary tag matching, documented-membership
    flags -- keyed by the interned id.  Ids are only comparable within one
    interner; batch consumers key their memos on the interner instance and
    reset when a batch from a different interner arrives.
    """

    __slots__ = ("_ids", "sets")

    def __init__(self) -> None:
        self._ids: dict[CommunitySet, int] = {}
        #: id -> canonical CommunitySet (the first equal set seen).
        self.sets: list[CommunitySet] = []

    def intern(self, communities: CommunitySet) -> int:
        found = self._ids.get(communities)
        if found is None:
            found = self._ids[communities] = len(self.sets)
            self.sets.append(communities)
        return found

    def __len__(self) -> int:
        return len(self.sets)


class PeerPrefixInterner:
    """Dense integer ids for distinct ``(collector, peer_ip, prefix)`` triples.

    The engine keys all of its active-observation state on these triples;
    interning them once at batch-construction time turns the per-row state
    probes of the batch kernel into byte-table lookups over an int column.
    Ids are append-only and interner-scoped, exactly like
    :class:`CommunityInterner` ids; they are exact (dict-interned), so two
    distinct triples can never share an id.
    """

    __slots__ = ("_ids", "triples")

    def __init__(self) -> None:
        self._ids: dict[tuple[str, str, Prefix], int] = {}
        #: id -> canonical (collector, peer_ip, prefix) triple.
        self.triples: list[tuple[str, str, Prefix]] = []

    def intern(self, triple: tuple[str, str, Prefix]) -> int:
        found = self._ids.get(triple)
        if found is None:
            found = self._ids[triple] = len(self.triples)
            self.triples.append(triple)
        return found

    def __len__(self) -> int:
        return len(self.triples)


class ElemBatch:
    """One chunk of the elem stream in columnar (struct-of-arrays) form.

    All columns are parallel buffers of equal length; ``elems[i]`` is the
    row view of column index ``i``.  Batches are immutable by convention --
    consumers only read the columns.
    """

    __slots__ = (
        "elems",
        "timestamps",
        "type_codes",
        "collectors",
        "peer_ips",
        "prefixes",
        "prefix_lengths",
        "prefix_keys",
        "community_ids",
        "peer_prefix_ids",
        "interner",
        "peer_interner",
    )

    def __init__(
        self,
        elems: list[StreamElem],
        timestamps: array,
        type_codes: array,
        collectors: list[str],
        peer_ips: list[str],
        prefixes: list[Prefix],
        prefix_lengths: array,
        prefix_keys: array,
        community_ids: array,
        peer_prefix_ids: array,
        interner: CommunityInterner,
        peer_interner: PeerPrefixInterner,
    ) -> None:
        self.elems = elems
        self.timestamps = timestamps
        self.type_codes = type_codes
        self.collectors = collectors
        self.peer_ips = peer_ips
        self.prefixes = prefixes
        self.prefix_lengths = prefix_lengths
        self.prefix_keys = prefix_keys
        self.community_ids = community_ids
        self.peer_prefix_ids = peer_prefix_ids
        self.interner = interner
        self.peer_interner = peer_interner

    # ------------------------------------------------------------------ #
    @classmethod
    def from_elems(
        cls,
        elems: Iterable[StreamElem],
        interner: CommunityInterner | None = None,
        peer_interner: PeerPrefixInterner | None = None,
    ) -> "ElemBatch":
        """Columnarise a chunk of elems.

        Pass shared interners when building several batches of one stream
        so community and peer-prefix ids (and the consumers' memos and
        byte tables keyed on them) stay stable across the whole pass.
        """
        rows = list(elems)
        interner = interner if interner is not None else CommunityInterner()
        peer_interner = (
            peer_interner if peer_interner is not None else PeerPrefixInterner()
        )
        type_codes = _TYPE_CODES
        intern_set = interner.intern
        intern_peer = peer_interner.intern
        prefixes = [elem.prefix for elem in rows]
        return cls(
            elems=rows,
            timestamps=array("d", [elem.timestamp for elem in rows]),
            type_codes=array("B", [type_codes[elem.elem_type] for elem in rows]),
            collectors=[intern(elem.collector) for elem in rows],
            peer_ips=[intern(elem.peer_ip) for elem in rows],
            prefixes=prefixes,
            prefix_lengths=array("B", [prefix.length for prefix in prefixes]),
            prefix_keys=array("Q", map(prefix_shard_key, prefixes)),
            community_ids=array(
                "Q", [intern_set(elem.communities) for elem in rows]
            ),
            peer_prefix_ids=array(
                "Q",
                [
                    intern_peer((elem.collector, elem.peer_ip, elem.prefix))
                    for elem in rows
                ],
            ),
            interner=interner,
            peer_interner=peer_interner,
        )

    def select(self, indices: list[int]) -> "ElemBatch":
        """A sub-batch of the given row indices (shares the interners).

        Used by the execution plan to shard one batch into per-worker
        sub-batches via the precomputed ``prefix_keys`` column.  One index
        buffer drives every column: each gather is a C-level
        ``map(column.__getitem__, indices)`` pass, so the split costs O(1)
        Python frames per column rather than one comprehension frame per
        row per column.
        """
        return ElemBatch(
            elems=list(map(self.elems.__getitem__, indices)),
            timestamps=array("d", map(self.timestamps.__getitem__, indices)),
            type_codes=array("B", map(self.type_codes.__getitem__, indices)),
            collectors=list(map(self.collectors.__getitem__, indices)),
            peer_ips=list(map(self.peer_ips.__getitem__, indices)),
            prefixes=list(map(self.prefixes.__getitem__, indices)),
            prefix_lengths=array("B", map(self.prefix_lengths.__getitem__, indices)),
            prefix_keys=array("Q", map(self.prefix_keys.__getitem__, indices)),
            community_ids=array("Q", map(self.community_ids.__getitem__, indices)),
            peer_prefix_ids=array(
                "Q", map(self.peer_prefix_ids.__getitem__, indices)
            ),
            interner=self.interner,
            peer_interner=self.peer_interner,
        )

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.elems)

    def __iter__(self) -> Iterator[StreamElem]:
        """The elem-at-a-time view: iterate the original rows."""
        return iter(self.elems)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ElemBatch(len={len(self.elems)}, interned={len(self.interner)}, "
            f"peer_prefixes={len(self.peer_interner)})"
        )


def batch_elems(
    elems: Iterable[StreamElem],
    batch_size: int,
    interner: CommunityInterner | None = None,
    peer_interner: PeerPrefixInterner | None = None,
) -> Iterator[ElemBatch]:
    """Chunk an elem iterable into :class:`ElemBatch` es of ``batch_size``.

    The chunk boundaries equal ``itertools.islice`` chunking of the same
    iterable, so batched and elem-at-a-time consumers see the elems in
    exactly the same order.  One interner pair (shared or fresh) serves
    every batch of the iteration.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    interner = interner if interner is not None else CommunityInterner()
    peer_interner = (
        peer_interner if peer_interner is not None else PeerPrefixInterner()
    )
    iterator = iter(elems)
    while chunk := list(islice(iterator, batch_size)):
        yield ElemBatch.from_elems(chunk, interner, peer_interner)
