"""Composable elem filters.

BGPStream exposes filters on time window, collectors, prefixes and
communities; the reproduction mirrors the ones the study actually needs.
Every filter is a callable ``StreamElem -> bool`` so they compose with
:func:`compose_filters` and can be handed to :class:`~repro.stream.merger.BgpStream`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol

from repro.bgp.community import Community
from repro.stream.record import StreamElem

__all__ = [
    "CollectorFilter",
    "CommunityFilter",
    "ElemFilter",
    "PrefixLengthFilter",
    "TimeWindowFilter",
    "compose_filters",
]


class ElemFilter(Protocol):
    """Anything callable on an elem returning True to keep it."""

    def __call__(self, elem: StreamElem) -> bool: ...  # pragma: no cover


class TimeWindowFilter:
    """Keep elems whose timestamp falls in ``[start, end)``.

    RIB elems are always kept (they describe state at stream start).
    """

    def __init__(self, start: float | None = None, end: float | None = None) -> None:
        self.start = start
        self.end = end

    def __call__(self, elem: StreamElem) -> bool:
        if elem.is_rib:
            return True
        if self.start is not None and elem.timestamp < self.start:
            return False
        if self.end is not None and elem.timestamp >= self.end:
            return False
        return True


class CollectorFilter:
    """Keep elems from the given projects and/or collectors."""

    def __init__(
        self,
        projects: Iterable[str] | None = None,
        collectors: Iterable[str] | None = None,
    ) -> None:
        self.projects = frozenset(projects) if projects is not None else None
        self.collectors = frozenset(collectors) if collectors is not None else None

    def __call__(self, elem: StreamElem) -> bool:
        if self.projects is not None and elem.project not in self.projects:
            return False
        if self.collectors is not None and elem.collector not in self.collectors:
            return False
        return True


class PrefixLengthFilter:
    """Keep elems whose prefix length lies within ``[min_length, max_length]``.

    Useful both for the data-cleaning step (drop prefixes shorter than /8)
    and for selecting host routes when profiling blackholed destinations.
    """

    def __init__(self, min_length: int = 0, max_length: int = 128) -> None:
        if min_length > max_length:
            raise ValueError("min_length must be <= max_length")
        self.min_length = min_length
        self.max_length = max_length

    def __call__(self, elem: StreamElem) -> bool:
        return self.min_length <= elem.prefix.length <= self.max_length


class CommunityFilter:
    """Keep announcements carrying at least one of the given communities.

    Withdrawals and RIB entries without communities are kept or dropped
    according to ``keep_non_announcements`` -- the inference engine needs
    withdrawals even when filtering on blackhole communities.
    """

    def __init__(
        self,
        communities: Iterable[Community | str],
        keep_non_announcements: bool = True,
    ) -> None:
        parsed = []
        for community in communities:
            if isinstance(community, Community):
                parsed.append(community)
            else:
                parsed.append(Community.from_string(community))
        self.communities = frozenset(parsed)
        self.keep_non_announcements = keep_non_announcements

    def __call__(self, elem: StreamElem) -> bool:
        if elem.is_withdrawal:
            return self.keep_non_announcements
        if not elem.communities:
            return False
        return bool(elem.communities.intersection_standard(self.communities))


def compose_filters(*filters: ElemFilter | Callable[[StreamElem], bool]) -> ElemFilter:
    """AND-compose several filters into one."""

    def combined(elem: StreamElem) -> bool:
        return all(f(elem) for f in filters)

    return combined
