"""Stream elements.

A :class:`StreamElem` is the reproduction's equivalent of a BGPStream
*elem*: one prefix-level routing event (RIB entry, announcement, or
withdrawal) observed at one collector from one peer.  The inference engine
consumes exactly this type, regardless of whether the elem came from an
in-memory simulation, from MRT bytes, or from a table dump.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.community import CommunitySet
from repro.bgp.message import BgpMessage, BgpUpdate, BgpWithdrawal
from repro.netutils.prefixes import Prefix

__all__ = ["ElemType", "StreamElem"]


class ElemType(enum.Enum):
    """The kind of routing event an elem describes."""

    RIB = "R"
    ANNOUNCEMENT = "A"
    WITHDRAWAL = "W"


@dataclass(frozen=True, slots=True)
class StreamElem:
    """One normalised routing event.

    Attributes mirror BGPStream's elem fields: record time, project /
    collector names, peer address and ASN, prefix, and (for announcements
    and RIB entries) the AS path, next hop, and communities.

    Slotted: millions of elems flow through every stream pass, and
    ``__slots__`` keeps each one a compact fixed layout (no per-instance
    ``__dict__``) with faster attribute loads in the engine hot loops.
    """

    timestamp: float
    elem_type: ElemType
    project: str
    collector: str
    peer_ip: str
    peer_as: int
    prefix: Prefix
    as_path: AsPath = field(default_factory=AsPath)
    next_hop: str | None = None
    communities: CommunitySet = field(default_factory=CommunitySet)

    # ------------------------------------------------------------------ #
    @property
    def is_announcement(self) -> bool:
        return self.elem_type is ElemType.ANNOUNCEMENT

    @property
    def is_withdrawal(self) -> bool:
        return self.elem_type is ElemType.WITHDRAWAL

    @property
    def is_rib(self) -> bool:
        return self.elem_type is ElemType.RIB

    @property
    def origin_as(self) -> int | None:
        return self.as_path.origin_as

    @property
    def peer_key(self) -> tuple[str, str]:
        """The (collector, peer IP) pair identifying one vantage point."""
        return (self.collector, self.peer_ip)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_message(
        cls,
        message: BgpMessage,
        project: str,
        elem_type: ElemType | None = None,
    ) -> "StreamElem":
        """Convert a BGP message into an elem.

        ``elem_type`` defaults to ANNOUNCEMENT/WITHDRAWAL based on the
        message class; pass :attr:`ElemType.RIB` for table-dump entries.
        """
        if isinstance(message, BgpUpdate):
            inferred = ElemType.ANNOUNCEMENT if elem_type is None else elem_type
            return cls(
                timestamp=message.timestamp,
                elem_type=inferred,
                project=project,
                collector=message.collector,
                peer_ip=message.peer_ip,
                peer_as=message.peer_as,
                prefix=message.prefix,
                as_path=message.attributes.as_path,
                next_hop=message.attributes.next_hop,
                communities=message.attributes.communities,
            )
        if isinstance(message, BgpWithdrawal):
            return cls(
                timestamp=message.timestamp,
                elem_type=ElemType.WITHDRAWAL,
                project=project,
                collector=message.collector,
                peer_ip=message.peer_ip,
                peer_as=message.peer_as,
                prefix=message.prefix,
            )
        raise TypeError(f"unsupported message type {type(message)!r}")

    def to_message(self) -> BgpMessage:
        """Convert back into a BGP message object."""
        if self.elem_type is ElemType.WITHDRAWAL:
            return BgpWithdrawal(
                timestamp=self.timestamp,
                collector=self.collector,
                peer_ip=self.peer_ip,
                peer_as=self.peer_as,
                prefix=self.prefix,
            )
        attributes = PathAttributes(
            as_path=self.as_path,
            next_hop=self.next_hop,
            communities=self.communities,
        )
        return BgpUpdate(
            timestamp=self.timestamp,
            collector=self.collector,
            peer_ip=self.peer_ip,
            peer_as=self.peer_as,
            prefix=self.prefix,
            attributes=attributes,
        )

    def sort_key(self) -> tuple:
        """Deterministic ordering key: time, then collector, peer, prefix."""
        return (
            self.timestamp,
            self.project,
            self.collector,
            self.peer_ip,
            self.prefix,
            self.elem_type.value,
        )
