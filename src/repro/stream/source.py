"""Stream sources.

A source couples one collector's data -- an optional initial RIB snapshot
plus a time-ordered update stream -- with the project name it belongs to
(``"ris"``, ``"routeviews"``, ``"pch"``, ``"cdn"``).  Two backends are
provided:

* :class:`CollectorSource` -- in-memory message lists (the routing simulator
  hands these over directly);
* :class:`MrtSource` -- MRT byte archives, decoded lazily via
  :mod:`repro.mrt.reader`, mirroring how the real study parsed archived
  collector files.

Both backends emit elems *incrementally*: iteration never materialises a
source's full elem stream, and an optional ``prefix_filter`` predicate lets
shard-parallel execution (:mod:`repro.exec`) skip non-shard messages before
the comparatively expensive :class:`StreamElem` construction.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.bgp.community import CommunitySet
from repro.bgp.message import BgpMessage, BgpUpdate, BgpWithdrawal
from repro.bgp.rib import Rib
from repro.mrt.reader import MrtReader
from repro.netutils.prefixes import Prefix
from repro.stream.batch import (
    TYPE_ANNOUNCEMENT,
    TYPE_RIB,
    TYPE_WITHDRAWAL,
    CommunityInterner,
    ElemBatch,
    PeerPrefixInterner,
    RowSpec,
    batch_specs,
)
from repro.stream.record import ElemType, StreamElem

__all__ = [
    "CollectorSource",
    "MrtSource",
    "PrefixPredicate",
    "dump_elems",
    "message_specs",
    "update_elems",
]

#: Predicate deciding whether a prefix belongs to the caller's shard.
PrefixPredicate = Callable[[Prefix], bool]

_EMPTY_COMMUNITIES = CommunitySet()


def dump_elems(
    dump: Iterable[BgpUpdate],
    project: str,
    prefix_filter: PrefixPredicate | None = None,
) -> Iterator[StreamElem]:
    """Lazily convert table-dump announcements into RIB elems."""
    for message in dump:
        if prefix_filter is not None and not prefix_filter(message.prefix):
            continue
        yield StreamElem.from_message(message, project, elem_type=ElemType.RIB)


def update_elems(
    updates: Iterable[BgpMessage],
    project: str,
    prefix_filter: PrefixPredicate | None = None,
) -> Iterator[StreamElem]:
    """Lazily convert live updates into announcement/withdrawal elems."""
    for message in updates:
        if prefix_filter is not None and not prefix_filter(message.prefix):
            continue
        yield StreamElem.from_message(message, project)


def message_specs(
    messages: Iterable[BgpMessage],
    project: str,
    rib: bool = False,
    prefix_filter: PrefixPredicate | None = None,
) -> Iterator[RowSpec]:
    """Lazily convert BGP messages into row specs -- no elems built.

    The spec twin of :func:`dump_elems` / :func:`update_elems`: the
    columnar fields are read straight off the message, and the
    ``StreamElem`` construction is deferred into the spec's row thunk
    (invoking it yields exactly ``StreamElem.from_message`` of the same
    message).  ``rib=True`` marks announcements as RIB entries, matching
    ``dump_elems``.
    """
    from_message = StreamElem.from_message
    rib_type = ElemType.RIB if rib else None
    announce_code = TYPE_RIB if rib else TYPE_ANNOUNCEMENT
    for message in messages:
        prefix = message.prefix
        if prefix_filter is not None and not prefix_filter(prefix):
            continue
        if isinstance(message, BgpUpdate):
            code = announce_code
            communities = message.attributes.communities
        elif isinstance(message, BgpWithdrawal):
            # from_message ignores elem_type for withdrawals; so do we.
            code = TYPE_WITHDRAWAL
            communities = _EMPTY_COMMUNITIES
        else:
            raise TypeError(f"unsupported message type {type(message)!r}")
        yield (
            message.timestamp,
            code,
            project,
            message.collector,
            message.peer_ip,
            prefix,
            communities,
            lambda message=message: from_message(message, project, rib_type),
        )


class CollectorSource:
    """An in-memory source for one collector.

    Parameters
    ----------
    project:
        Dataset/platform name (``"ris"``, ``"routeviews"``, ``"pch"``,
        ``"cdn"``).
    collector:
        Collector name (``"rrc00"``, ``"route-views2"``, ...).
    rib:
        Optional initial RIB snapshot (:class:`~repro.bgp.rib.Rib` or a list
        of dump announcements).
    updates:
        The update stream for the monitoring period (any iterable; it is
        consumed once at construction and kept sorted by timestamp).
    """

    def __init__(
        self,
        project: str,
        collector: str,
        rib: Rib | Sequence[BgpUpdate] | None = None,
        updates: Iterable[BgpMessage] = (),
    ) -> None:
        self.project = project
        self.collector = collector
        if isinstance(rib, Rib):
            self._dump = rib.dump()
        else:
            self._dump = list(rib or [])
        self._updates = sorted(updates, key=lambda m: m.timestamp)

    # ------------------------------------------------------------------ #
    def rib_elems(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[StreamElem]:
        """RIB elems from the initial table dump (possibly empty)."""
        return dump_elems(self._dump, self.project, prefix_filter)

    def update_stream(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[StreamElem]:
        """Announcement/withdrawal elems in time order."""
        return update_elems(self._updates, self.project, prefix_filter)

    def all_elems(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[StreamElem]:
        """RIB elems first, then the update stream."""
        yield from self.rib_elems(prefix_filter)
        yield from self.update_stream(prefix_filter)

    # -- decoder-to-column path ---------------------------------------- #
    def rib_specs(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[RowSpec]:
        """Row specs of :meth:`rib_elems` (rows deferred)."""
        return message_specs(self._dump, self.project, rib=True, prefix_filter=prefix_filter)

    def update_specs(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[RowSpec]:
        """Row specs of :meth:`update_stream` (rows deferred)."""
        return message_specs(self._updates, self.project, prefix_filter=prefix_filter)

    def row_specs(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[RowSpec]:
        """Row specs of :meth:`all_elems`, in the same order."""
        yield from self.rib_specs(prefix_filter)
        yield from self.update_specs(prefix_filter)

    def batches(
        self,
        batch_size: int,
        prefix_filter: PrefixPredicate | None = None,
        interner: CommunityInterner | None = None,
        peer_interner: PeerPrefixInterner | None = None,
    ) -> Iterator[ElemBatch]:
        """This source's elems in columnar chunks of ``batch_size``.

        Built decoder-to-column: the typed columns are assembled straight
        from row specs and the ``elems`` column stays lazy -- a row is only
        materialised if a consumer indexes it.
        """
        return batch_specs(
            self.row_specs(prefix_filter), batch_size, interner, peer_interner
        )

    def __len__(self) -> int:
        return len(self._dump) + len(self._updates)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CollectorSource(project={self.project!r}, collector={self.collector!r}, "
            f"dump={len(self._dump)}, updates={len(self._updates)})"
        )


class MrtSource:
    """A source backed by MRT byte archives.

    The RIB archive (TABLE_DUMP_V2) and update archive (BGP4MP) are decoded
    lazily on iteration so large archives never need to be held twice in
    memory.
    """

    def __init__(
        self,
        project: str,
        collector: str,
        rib_bytes: bytes | None = None,
        update_bytes: bytes | None = None,
    ) -> None:
        self.project = project
        self.collector = collector
        self._rib_bytes = rib_bytes
        self._update_bytes = update_bytes

    def rib_elems(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[StreamElem]:
        if not self._rib_bytes:
            return iter(())
        reader = MrtReader(collector=self.collector)
        return dump_elems(
            reader.messages(self._rib_bytes), self.project, prefix_filter
        )

    def update_stream(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[StreamElem]:
        if not self._update_bytes:
            return iter(())
        reader = MrtReader(collector=self.collector)
        return update_elems(
            reader.messages(self._update_bytes), self.project, prefix_filter
        )

    def all_elems(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[StreamElem]:
        yield from self.rib_elems(prefix_filter)
        yield from self.update_stream(prefix_filter)

    # -- decoder-to-column path ---------------------------------------- #
    def rib_specs(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[RowSpec]:
        """Row specs of :meth:`rib_elems`, decoded column-first.

        The reader writes timestamp/prefix/peer/community fields straight
        out of the MRT records; neither a ``BgpMessage`` nor a
        ``StreamElem`` is constructed unless the row thunk fires.
        """
        if not self._rib_bytes:
            return iter(())
        reader = MrtReader(collector=self.collector)
        return reader.row_specs(
            self._rib_bytes, self.project, rib=True, prefix_filter=prefix_filter
        )

    def update_specs(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[RowSpec]:
        """Row specs of :meth:`update_stream`, decoded column-first."""
        if not self._update_bytes:
            return iter(())
        reader = MrtReader(collector=self.collector)
        return reader.row_specs(
            self._update_bytes, self.project, prefix_filter=prefix_filter
        )

    def row_specs(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[RowSpec]:
        """Row specs of :meth:`all_elems`, in the same order."""
        yield from self.rib_specs(prefix_filter)
        yield from self.update_specs(prefix_filter)

    def batches(
        self,
        batch_size: int,
        prefix_filter: PrefixPredicate | None = None,
        interner: CommunityInterner | None = None,
        peer_interner: PeerPrefixInterner | None = None,
    ) -> Iterator[ElemBatch]:
        """Decoded elems in columnar chunks of ``batch_size`` (lazy rows)."""
        return batch_specs(
            self.row_specs(prefix_filter), batch_size, interner, peer_interner
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        rib_size = len(self._rib_bytes or b"")
        upd_size = len(self._update_bytes or b"")
        return (
            f"MrtSource(project={self.project!r}, collector={self.collector!r}, "
            f"rib_bytes={rib_size}, update_bytes={upd_size})"
        )
