"""Multi-source, time-ordered stream merge.

:class:`BgpStream` is the reproduction's equivalent of instantiating
BGPStream over several projects/collectors at once: all sources' RIB elems
are emitted first (initialisation), then the per-collector update streams
are merged by timestamp with a k-way heap merge, optionally passing through
filters.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Sequence

from repro.stream.filters import ElemFilter
from repro.stream.record import StreamElem
from repro.stream.source import CollectorSource, MrtSource

__all__ = ["BgpStream", "merge_sources"]

Source = CollectorSource | MrtSource


def merge_sources(sources: Sequence[Source]) -> Iterator[StreamElem]:
    """Merge the update streams of several sources in timestamp order.

    Within one source, relative order is preserved; across sources, ties on
    timestamp are broken by the elem sort key so the merge is deterministic.
    """
    iterators = [source.update_stream() for source in sources]
    keyed = (
        ((elem.timestamp, index, sequence), elem)
        for index, iterator in enumerate(iterators)
        for sequence, elem in enumerate(iterator)
    )
    # heapq.merge needs pre-sorted runs; each source is already time sorted,
    # so merge per-source generators instead of flattening.
    runs = []
    for index, source in enumerate(sources):
        runs.append(
            ((elem.timestamp, index, seq), elem)
            for seq, elem in enumerate(source.update_stream())
        )
    for _, elem in heapq.merge(*runs, key=lambda pair: pair[0]):
        yield elem


class BgpStream:
    """A filtered, merged view over several collector sources.

    Usage mirrors the real BGPStream workflow used in the paper::

        stream = BgpStream(sources, filters=[TimeWindowFilter(start, end)])
        for elem in stream:
            engine.process(elem)

    Iteration yields RIB elems (from every source's table dump) first, then
    merged updates.
    """

    def __init__(
        self,
        sources: Iterable[Source],
        filters: Sequence[ElemFilter] = (),
    ) -> None:
        self.sources = list(sources)
        self.filters = list(filters)

    # ------------------------------------------------------------------ #
    def _passes(self, elem: StreamElem) -> bool:
        return all(f(elem) for f in self.filters)

    def rib_elems(self) -> Iterator[StreamElem]:
        """All sources' RIB elems, in deterministic order."""
        elems = [
            elem for source in self.sources for elem in source.rib_elems()
        ]
        elems.sort(key=StreamElem.sort_key)
        for elem in elems:
            if self._passes(elem):
                yield elem

    def updates(self) -> Iterator[StreamElem]:
        """Merged announcement/withdrawal elems, in time order."""
        for elem in merge_sources(self.sources):
            if self._passes(elem):
                yield elem

    def __iter__(self) -> Iterator[StreamElem]:
        yield from self.rib_elems()
        yield from self.updates()

    # ------------------------------------------------------------------ #
    def projects(self) -> set[str]:
        return {source.project for source in self.sources}

    def collectors(self) -> set[str]:
        return {source.collector for source in self.sources}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BgpStream(sources={len(self.sources)}, filters={len(self.filters)}, "
            f"projects={sorted(self.projects())})"
        )
