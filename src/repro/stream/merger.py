"""Multi-source, time-ordered stream merge.

:class:`BgpStream` is the reproduction's equivalent of instantiating
BGPStream over several projects/collectors at once: all sources' RIB elems
are emitted first (initialisation), then the per-collector update streams
are merged by timestamp with a k-way heap merge, optionally passing through
filters.

The merge is fully incremental: at no point is the combined elem stream
materialised.  RIB elems are sorted per source and k-way merged (bounded by
the table dumps, which are resident in their sources anyway); the much
larger update stream is heap-merged lazily and never held as a list.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Sequence

from repro.stream.batch import (
    CommunityInterner,
    ElemBatch,
    PeerPrefixInterner,
    RowSpec,
    batch_elems,
    batch_specs,
    row_spec_sort_key,
    spec_timestamp,
)
from repro.stream.filters import ElemFilter
from repro.stream.record import StreamElem
from repro.stream.source import CollectorSource, MrtSource, PrefixPredicate

__all__ = ["BgpStream", "merge_sources"]

Source = CollectorSource | MrtSource


def merge_sources(
    sources: Sequence[Source],
    prefix_filter: PrefixPredicate | None = None,
) -> Iterator[StreamElem]:
    """Merge the update streams of several sources in timestamp order.

    Within one source, relative order is preserved; across sources, ties on
    timestamp are broken by source order (``heapq.merge`` is stable), so the
    merge is deterministic.  ``prefix_filter`` restricts the merge to one
    shard's prefixes without constructing elems for the rest.
    """
    # heapq.merge needs pre-sorted runs; each source is already time sorted,
    # so merge the per-source generators directly.
    runs = [source.update_stream(prefix_filter) for source in sources]
    return heapq.merge(*runs, key=lambda elem: elem.timestamp)


def _sorted_rib_run(
    source: Source, prefix_filter: PrefixPredicate | None
) -> list[StreamElem]:
    """One source's RIB elems, sorted by the deterministic elem key."""
    return sorted(source.rib_elems(prefix_filter), key=StreamElem.sort_key)


class BgpStream:
    """A filtered, merged view over several collector sources.

    Usage mirrors the real BGPStream workflow used in the paper::

        stream = BgpStream(sources, filters=[TimeWindowFilter(start, end)])
        for elem in stream:
            engine.process(elem)

    Iteration yields RIB elems (from every source's table dump) first, then
    merged updates.
    """

    def __init__(
        self,
        sources: Iterable[Source],
        filters: Sequence[ElemFilter] = (),
    ) -> None:
        self.sources = list(sources)
        self.filters = list(filters)

    # ------------------------------------------------------------------ #
    def _passes(self, elem: StreamElem) -> bool:
        return all(f(elem) for f in self.filters)

    def rib_elems(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[StreamElem]:
        """All sources' RIB elems, in deterministic order.

        Each source's dump is sorted on its own and the sorted runs are
        heap-merged, which equals a whole-stream stable sort without ever
        building the combined list.
        """
        runs = [_sorted_rib_run(source, prefix_filter) for source in self.sources]
        for elem in heapq.merge(*runs, key=StreamElem.sort_key):
            if self._passes(elem):
                yield elem

    def updates(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[StreamElem]:
        """Merged announcement/withdrawal elems, in time order."""
        for elem in merge_sources(self.sources, prefix_filter):
            if self._passes(elem):
                yield elem

    def elems(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[StreamElem]:
        """RIB elems first, then merged updates (one shard if filtered)."""
        yield from self.rib_elems(prefix_filter)
        yield from self.updates(prefix_filter)

    def row_specs(
        self, prefix_filter: PrefixPredicate | None = None
    ) -> Iterator[RowSpec]:
        """The merged stream as row specs, in exactly :meth:`elems` order.

        Sort and merge keys are computed from the spec fields
        (:func:`row_spec_sort_key` mirrors ``StreamElem.sort_key`` field
        for field; updates merge on the spec timestamp with the same
        stable tie-break), so no row is materialised to establish order.
        Only valid on unfiltered streams -- elem filters need elems.
        """
        rib_runs = [
            sorted(source.rib_specs(prefix_filter), key=row_spec_sort_key)
            for source in self.sources
        ]
        yield from heapq.merge(*rib_runs, key=row_spec_sort_key)
        update_runs = [source.update_specs(prefix_filter) for source in self.sources]
        yield from heapq.merge(*update_runs, key=spec_timestamp)

    def batches(
        self,
        batch_size: int,
        prefix_filter: PrefixPredicate | None = None,
        interner: CommunityInterner | None = None,
        peer_interner: PeerPrefixInterner | None = None,
    ) -> Iterator[ElemBatch]:
        """The merged stream in columnar chunks of ``batch_size`` elems.

        Chunk boundaries equal ``islice`` chunking of :meth:`elems`, so
        batched consumers observe exactly the elem-at-a-time order.  On
        unfiltered streams the chunks are built decoder-to-column from
        :meth:`row_specs` (lazy rows); elem filters force the eager
        per-elem path, since they inspect ``StreamElem`` objects.
        """
        if self.filters or not all(
            hasattr(source, "row_specs") for source in self.sources
        ):
            return batch_elems(
                self.elems(prefix_filter), batch_size, interner, peer_interner
            )
        return batch_specs(
            self.row_specs(prefix_filter), batch_size, interner, peer_interner
        )

    def __iter__(self) -> Iterator[StreamElem]:
        return self.elems()

    # ------------------------------------------------------------------ #
    def projects(self) -> set[str]:
        return {source.project for source in self.sources}

    def collectors(self) -> set[str]:
        return {source.collector for source in self.sources}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BgpStream(sources={len(self.sources)}, filters={len(self.filters)}, "
            f"projects={sorted(self.projects())})"
        )
