"""Core topology value types: network classes and autonomous systems."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.netutils.prefixes import Prefix

__all__ = ["AutonomousSystem", "NetworkType"]


class NetworkType(enum.Enum):
    """Network business types, following the paper's taxonomy (Table 2).

    The paper groups PeeringDB's NSP and Cable/DSL/ISP classes into
    ``Transit/Access`` and keeps Educational/Research and Not-for-Profit (a
    PeeringDB-only distinction) as one combined class.
    """

    TRANSIT_ACCESS = "Transit/Access"
    IXP = "IXP"
    CONTENT = "Content"
    EDUCATION_RESEARCH_NFP = "Education/Research/NfP"
    ENTERPRISE = "Enterprise"
    UNKNOWN = "Unknown"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class AutonomousSystem:
    """One simulated autonomous system.

    Attributes
    ----------
    asn:
        Public AS number.
    name:
        Human-readable operator name (used in IRR/web documentation).
    network_type:
        The ground-truth business type.
    country:
        ISO-3166 alpha-2 country code of the RIR registration.
    tier:
        1 for tier-1 transit-free networks, 2 for other transit providers,
        3 for stub/edge networks.
    prefixes:
        Prefixes this AS originates in regular routing.
    address_block:
        The covering allocation from which the AS numbers its hosts and
        carves more-specific (blackholed) prefixes.
    in_peeringdb / discloses_type:
        Whether the AS keeps a PeeringDB record and whether that record
        declares the network type -- the paper falls back to CAIDA's
        classification when either is false.
    """

    asn: int
    name: str
    network_type: NetworkType
    country: str
    tier: int = 3
    prefixes: list[Prefix] = field(default_factory=list)
    address_block: Prefix | None = None
    in_peeringdb: bool = True
    discloses_type: bool = True

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError("ASN must be positive")
        if self.tier not in (1, 2, 3):
            raise ValueError("tier must be 1, 2 or 3")

    # ------------------------------------------------------------------ #
    @property
    def is_transit(self) -> bool:
        """True for networks that can carry traffic between other ASes."""
        return self.tier in (1, 2)

    def host_address(self, offset: int) -> str:
        """Return one host address inside the AS's allocation."""
        if self.address_block is None:
            raise ValueError(f"AS{self.asn} has no address block")
        return self.address_block.address_at(offset)

    def host_route(self, offset: int) -> Prefix:
        """Return the /32 host route for one address inside the allocation."""
        return Prefix.host(self.host_address(offset))

    def __hash__(self) -> int:
        return hash(self.asn)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"AutonomousSystem(AS{self.asn}, {self.network_type.value}, "
            f"{self.country}, tier={self.tier})"
        )
