"""Country assignment model.

Figure 6 of the paper maps blackholing providers and users per country; the
top countries are Russia, the USA and Germany, with Brazil and Ukraine also
prominent among users.  The :class:`CountryModel` assigns RIR-registration
countries to generated ASes with weights that reproduce that skew, while the
IXP placement list mirrors the "major cities which are also
telecommunication hubs" observation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["CountryModel", "DEFAULT_COUNTRY_MODEL", "IXP_COUNTRIES"]

#: Relative weights for AS registrations, loosely following the paper's
#: Figure 6 (providers and users are most numerous in RU, US, DE, with BR
#: and UA strongly represented among users).
_DEFAULT_WEIGHTS: dict[str, float] = {
    "RU": 18.0,
    "US": 16.0,
    "DE": 12.0,
    "BR": 7.0,
    "UA": 6.0,
    "GB": 4.5,
    "NL": 4.0,
    "FR": 3.5,
    "PL": 3.5,
    "IT": 3.0,
    "CN": 2.5,
    "JP": 2.5,
    "SE": 2.0,
    "CH": 2.0,
    "ES": 2.0,
    "CA": 2.0,
    "AU": 1.5,
    "IN": 1.5,
    "HK": 1.5,
    "SG": 1.5,
    "ZA": 1.0,
    "AR": 1.0,
    "MX": 1.0,
    "TR": 1.0,
    "CZ": 1.0,
    "AT": 1.0,
}

#: Countries hosting the simulated IXPs (telecommunication hubs in Europe,
#: the USA and Asia, echoing Section 7).
IXP_COUNTRIES: tuple[str, ...] = (
    "DE", "NL", "GB", "US", "RU", "HK", "SG", "BR", "FR", "JP", "PL", "UA",
)


@dataclass
class CountryModel:
    """Weighted country sampler for AS and IXP placement."""

    weights: dict[str, float] = field(default_factory=lambda: dict(_DEFAULT_WEIGHTS))

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("country model needs at least one country")
        self._countries = sorted(self.weights)
        self._cumulative: list[float] = []
        total = 0.0
        for country in self._countries:
            total += self.weights[country]
            self._cumulative.append(total)
        self._total = total

    def sample(self, rng: random.Random) -> str:
        """Draw one country according to the configured weights."""
        target = rng.random() * self._total
        for country, bound in zip(self._countries, self._cumulative):
            if target <= bound:
                return country
        return self._countries[-1]

    def sample_ixp_country(self, rng: random.Random) -> str:
        """Draw a country for an IXP from the telecommunication-hub list."""
        return rng.choice(IXP_COUNTRIES)

    def countries(self) -> list[str]:
        return list(self._countries)


#: Shared default instance.
DEFAULT_COUNTRY_MODEL = CountryModel()
