"""AS-level relationship graph.

The graph stores customer-provider (``p2c``) and peer-peer (``p2p``) edges,
mirroring CAIDA's AS-relationship dataset which the paper uses both to pick
RIPE Atlas probes (downstream cone / upstream cone / peers of the blackholing
user) and to reason about who may legitimately blackhole a prefix (providers
accept requests from the originator or from a network holding the prefix in
its customer cone).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Iterable, Iterator

from repro.topology.types import AutonomousSystem

__all__ = ["AsGraph", "Relationship"]


class Relationship(enum.Enum):
    """Business relationship between two ASes, from the first AS's view."""

    PROVIDER = "provider"   # the other AS is my provider
    CUSTOMER = "customer"   # the other AS is my customer
    PEER = "peer"           # settlement-free peer

    def inverse(self) -> "Relationship":
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        return Relationship.PEER


class AsGraph:
    """Mutable AS-relationship graph with cone and neighbour queries."""

    def __init__(self) -> None:
        self._ases: dict[int, AutonomousSystem] = {}
        self._providers: dict[int, set[int]] = {}
        self._customers: dict[int, set[int]] = {}
        self._peers: dict[int, set[int]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_as(self, autonomous_system: AutonomousSystem) -> None:
        asn = autonomous_system.asn
        if asn in self._ases:
            raise ValueError(f"AS{asn} already present")
        self._ases[asn] = autonomous_system
        self._providers[asn] = set()
        self._customers[asn] = set()
        self._peers[asn] = set()

    def add_p2c(self, provider: int, customer: int) -> None:
        """Add a provider->customer edge."""
        self._require(provider)
        self._require(customer)
        if provider == customer:
            raise ValueError("an AS cannot be its own provider")
        self._customers[provider].add(customer)
        self._providers[customer].add(provider)

    def add_p2p(self, left: int, right: int) -> None:
        """Add a settlement-free peering edge."""
        self._require(left)
        self._require(right)
        if left == right:
            raise ValueError("an AS cannot peer with itself")
        self._peers[left].add(right)
        self._peers[right].add(left)

    def _require(self, asn: int) -> None:
        if asn not in self._ases:
            raise KeyError(f"unknown AS{asn}")

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __contains__(self, asn: int) -> bool:
        return asn in self._ases

    def __len__(self) -> int:
        return len(self._ases)

    def __iter__(self) -> Iterator[AutonomousSystem]:
        return iter(self._ases.values())

    def get(self, asn: int) -> AutonomousSystem:
        self._require(asn)
        return self._ases[asn]

    def asns(self) -> list[int]:
        return sorted(self._ases)

    def providers(self, asn: int) -> set[int]:
        self._require(asn)
        return set(self._providers[asn])

    def customers(self, asn: int) -> set[int]:
        self._require(asn)
        return set(self._customers[asn])

    def peers(self, asn: int) -> set[int]:
        self._require(asn)
        return set(self._peers[asn])

    def neighbours(self, asn: int) -> set[int]:
        """All BGP neighbours regardless of relationship."""
        self._require(asn)
        return self._providers[asn] | self._customers[asn] | self._peers[asn]

    def relationship(self, asn: int, other: int) -> Relationship | None:
        """The relationship of ``other`` relative to ``asn`` (or None)."""
        self._require(asn)
        if other in self._providers[asn]:
            return Relationship.PROVIDER
        if other in self._customers[asn]:
            return Relationship.CUSTOMER
        if other in self._peers[asn]:
            return Relationship.PEER
        return None

    # ------------------------------------------------------------------ #
    # Derived structures
    # ------------------------------------------------------------------ #
    def customer_cone(self, asn: int) -> set[int]:
        """All ASes reachable by repeatedly following customer edges.

        The cone includes ``asn`` itself, matching CAIDA's convention.
        """
        self._require(asn)
        cone: set[int] = {asn}
        queue: deque[int] = deque([asn])
        while queue:
            current = queue.popleft()
            for customer in self._customers[current]:
                if customer not in cone:
                    cone.add(customer)
                    queue.append(customer)
        return cone

    def upstream_cone(self, asn: int) -> set[int]:
        """All ASes reachable by repeatedly following provider edges."""
        self._require(asn)
        cone: set[int] = {asn}
        queue: deque[int] = deque([asn])
        while queue:
            current = queue.popleft()
            for provider in self._providers[current]:
                if provider not in cone:
                    cone.add(provider)
                    queue.append(provider)
        return cone

    def transit_ases(self) -> set[int]:
        """ASes with at least one customer -- potential blackholing providers.

        This matches the paper's definition of "routed transit ASes, i.e.,
        ASes that carry traffic between at least two different other ASes":
        an AS with customers and at least one other neighbour.
        """
        return {
            asn
            for asn in self._ases
            if self._customers[asn] and len(self.neighbours(asn)) >= 2
        }

    def in_customer_cone(self, asn: int, of: int) -> bool:
        """True if ``asn`` is inside the customer cone of ``of``."""
        return asn in self.customer_cone(of)

    def degree(self, asn: int) -> int:
        return len(self.neighbours(asn))

    # ------------------------------------------------------------------ #
    # Serialisation helpers (CAIDA serial-2-like text format)
    # ------------------------------------------------------------------ #
    def to_relationship_lines(self) -> list[str]:
        """Export edges in CAIDA serial-2 style: ``a|b|-1`` (p2c), ``a|b|0`` (p2p)."""
        lines: list[str] = []
        for provider in sorted(self._customers):
            for customer in sorted(self._customers[provider]):
                lines.append(f"{provider}|{customer}|-1")
        seen: set[tuple[int, int]] = set()
        for left in sorted(self._peers):
            for right in sorted(self._peers[left]):
                key = (min(left, right), max(left, right))
                if key not in seen:
                    seen.add(key)
                    lines.append(f"{key[0]}|{key[1]}|0")
        return lines

    @classmethod
    def from_relationship_lines(
        cls, lines: Iterable[str], ases: Iterable[AutonomousSystem]
    ) -> "AsGraph":
        """Rebuild a graph from serial-2 style lines plus AS metadata."""
        graph = cls()
        for autonomous_system in ases:
            graph.add_as(autonomous_system)
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            left_text, right_text, rel_text = line.split("|")
            left, right, rel = int(left_text), int(right_text), int(rel_text)
            if rel == -1:
                graph.add_p2c(left, right)
            elif rel == 0:
                graph.add_p2p(left, right)
            else:
                raise ValueError(f"unknown relationship code {rel}")
        return graph
