"""CAIDA-style AS classification dataset.

The paper groups networks by business type using PeeringDB when a record
with a declared type exists and CAIDA's AS-classification dataset otherwise.
CAIDA's taxonomy differs slightly (it has no Education/Research or NfP
class), so this module reproduces both the dataset and the coarser mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.topology.types import AutonomousSystem, NetworkType

__all__ = ["AsClassificationDataset"]

#: How ground-truth network types appear in the CAIDA-style dataset.  CAIDA
#: classifies ASes as "Transit/Access", "Content", or "Enterprise"; research
#: networks usually end up as Transit/Access or Enterprise, and IXP route
#: server ASNs are mostly absent.
_CAIDA_LABELS: dict[NetworkType, str] = {
    NetworkType.TRANSIT_ACCESS: "Transit/Access",
    NetworkType.CONTENT: "Content",
    NetworkType.ENTERPRISE: "Enterprise",
    NetworkType.EDUCATION_RESEARCH_NFP: "Transit/Access",
    NetworkType.IXP: "Enterprise",
    NetworkType.UNKNOWN: "Unknown",
}

_LABEL_TO_TYPE: dict[str, NetworkType] = {
    "Transit/Access": NetworkType.TRANSIT_ACCESS,
    "Content": NetworkType.CONTENT,
    "Enterprise": NetworkType.ENTERPRISE,
    "Unknown": NetworkType.UNKNOWN,
}


@dataclass
class AsClassificationDataset:
    """ASN -> CAIDA-style class label."""

    labels: dict[int, str] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_ases(
        cls, ases: Iterable[AutonomousSystem], coverage: float = 0.97
    ) -> "AsClassificationDataset":
        """Build the dataset from ground truth.

        ``coverage`` controls what fraction of ASes appear at all (the real
        dataset misses some ASes); the missing ones are chosen
        deterministically by ASN so rebuilding is reproducible.
        """
        labels: dict[int, str] = {}
        for autonomous_system in ases:
            # Deterministic pseudo-random drop based on the ASN value.
            if (autonomous_system.asn * 2654435761 % 1000) / 1000.0 >= coverage:
                continue
            labels[autonomous_system.asn] = _CAIDA_LABELS[autonomous_system.network_type]
        return cls(labels)

    # ------------------------------------------------------------------ #
    def classify(self, asn: int) -> NetworkType:
        """Return the network type for an ASN (UNKNOWN when absent)."""
        label = self.labels.get(asn)
        if label is None:
            return NetworkType.UNKNOWN
        return _LABEL_TO_TYPE.get(label, NetworkType.UNKNOWN)

    def __contains__(self, asn: int) -> bool:
        return asn in self.labels

    def __len__(self) -> int:
        return len(self.labels)

    def to_lines(self) -> list[str]:
        """Export in the ``asn|source|class`` text format CAIDA publishes."""
        return [
            f"{asn}|CAIDA_class|{label}"
            for asn, label in sorted(self.labels.items())
        ]

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "AsClassificationDataset":
        labels: dict[int, str] = {}
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            asn_text, _source, label = line.split("|", 2)
            labels[int(asn_text)] = label
        return cls(labels)
