"""Provider-side blackholing service configuration.

This module describes the *ground truth* of the simulated world: which
networks and IXPs offer remotely-triggered blackholing, under which BGP
community values, how they document the service, and how faithfully they
follow RFC 7999 / RFC 5635 (accepting only more-specifics than /24, not
re-exporting blackholed prefixes).  The inference pipeline never reads these
objects -- it must rediscover them from IRR text, web pages and BGP data --
but the workload generator and the evaluation harness use them to drive
behaviour and to score inference accuracy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.bgp.community import Community, LargeCommunity

__all__ = ["BlackholingService", "CommunityScope", "DocumentationChannel"]


class CommunityScope(enum.Enum):
    """Geographic scope of one blackhole community.

    Most providers use a single global community; several large ones add
    region-scoped variants ("blackhole only in Europe, US, or Asia").
    """

    GLOBAL = "global"
    EUROPE = "europe"
    NORTH_AMERICA = "north-america"
    ASIA = "asia"


class DocumentationChannel(enum.Enum):
    """Where (if anywhere) the provider documents its blackhole community."""

    IRR = "irr"            # Internet Routing Registry (RADb-style remarks)
    WEB = "web"            # operator web page / customer guide
    PRIVATE = "private"    # only via private communication
    NONE = "none"          # undocumented (candidate for the inferred dictionary)


@dataclass
class BlackholingService:
    """The blackholing offering of one provider (ISP or IXP).

    Attributes
    ----------
    provider_asn:
        The ASN identified with the service.  For IXPs this is the route
        server ASN; ``ixp_name`` is set as well.
    communities:
        The standard communities that trigger blackholing at this provider,
        mapped to their geographic scope.
    large_communities:
        RFC 8092 communities used for blackholing (rare: 1 of 307 networks
        in the paper).
    documentation:
        How the community values are published.
    accepts_max_length:
        Longest prefix accepted (32 = host routes; providers following best
        practice accept /25../32 only when tagged).
    requires_origin_auth:
        Whether requests are only accepted from the prefix originator or a
        network holding the prefix in its customer cone.
    propagates_blackhole_routes:
        True when the provider re-exports blackholed prefixes to neighbours
        (an RFC 7999 violation observed for ~30% of events in the paper).
    shares_community:
        True when the community value is shared with other providers (e.g.
        ``0:666``), making attribution ambiguous without an AS-path check.
    ixp_name:
        Set for IXP services.
    """

    provider_asn: int
    communities: dict[Community, CommunityScope] = field(default_factory=dict)
    large_communities: list[LargeCommunity] = field(default_factory=list)
    documentation: DocumentationChannel = DocumentationChannel.IRR
    accepts_max_length: int = 32
    requires_origin_auth: bool = True
    propagates_blackhole_routes: bool = False
    shares_community: bool = False
    ixp_name: str | None = None

    # ------------------------------------------------------------------ #
    @property
    def is_ixp(self) -> bool:
        return self.ixp_name is not None

    @property
    def is_documented(self) -> bool:
        return self.documentation in (
            DocumentationChannel.IRR,
            DocumentationChannel.WEB,
            DocumentationChannel.PRIVATE,
        )

    @property
    def primary_community(self) -> Community | None:
        """The global-scope community (or the first one) of the service."""
        for community, scope in self.communities.items():
            if scope is CommunityScope.GLOBAL:
                return community
        for community in self.communities:
            return community
        return None

    def all_communities(self) -> list[Community]:
        return sorted(self.communities)

    def accepts_prefix_length(self, length: int) -> bool:
        """True if the provider accepts a blackholing request of this length.

        Best practice: accept more-specifics than /24 *only* with the
        blackhole community, and never blackhole less-specifics than /24.
        """
        return 25 <= length <= self.accepts_max_length or length == 24

    def __repr__(self) -> str:  # pragma: no cover - trivial
        label = self.ixp_name or f"AS{self.provider_asn}"
        comms = ",".join(str(c) for c in self.all_communities())
        return f"BlackholingService({label}, [{comms}], doc={self.documentation.value})"
