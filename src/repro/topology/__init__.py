"""Internet topology simulation substrate.

The paper measures the real Internet; this package generates a synthetic
Internet with the structural properties the methodology depends on:

* an AS-level graph with customer-provider and peer-peer relationships
  (:mod:`repro.topology.asgraph`), tiers, and customer cones;
* IXPs with route servers, peering LANs and member ASes
  (:mod:`repro.topology.ixp`);
* per-AS metadata mirroring the auxiliary datasets the study consults:
  PeeringDB records (:mod:`repro.topology.peeringdb`), CAIDA-style AS
  classification (:mod:`repro.topology.classification`), RIR country
  registrations (:mod:`repro.topology.geography`);
* provider-side blackholing service configuration
  (:mod:`repro.topology.blackholing`);
* and the :class:`~repro.topology.generator.TopologyGenerator` that builds a
  whole coherent :class:`~repro.topology.generator.InternetTopology` from a
  seed.
"""

from repro.topology.asgraph import AsGraph, Relationship
from repro.topology.blackholing import BlackholingService, CommunityScope
from repro.topology.classification import AsClassificationDataset
from repro.topology.generator import InternetTopology, TopologyConfig, TopologyGenerator
from repro.topology.geography import CountryModel, DEFAULT_COUNTRY_MODEL
from repro.topology.ixp import Ixp
from repro.topology.peeringdb import PeeringDbDataset, PeeringDbRecord
from repro.topology.types import AutonomousSystem, NetworkType

__all__ = [
    "AsClassificationDataset",
    "AsGraph",
    "AutonomousSystem",
    "BlackholingService",
    "CommunityScope",
    "CountryModel",
    "DEFAULT_COUNTRY_MODEL",
    "InternetTopology",
    "Ixp",
    "NetworkType",
    "PeeringDbDataset",
    "PeeringDbRecord",
    "Relationship",
    "TopologyConfig",
    "TopologyGenerator",
]
