"""PeeringDB-style dataset.

The methodology consults PeeringDB for two things:

* the declared network type of an AS (Table 2 / Table 4 grouping), falling
  back to the CAIDA classification when the AS has no record or does not
  disclose its type;
* the address space of IXP peering LANs, used to recognise that the
  ``peer-ip`` of a BGP message belongs to an IXP and hence that the IXP is
  the blackholing provider (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.netutils.prefixes import Prefix
from repro.topology.ixp import Ixp
from repro.topology.types import AutonomousSystem, NetworkType

__all__ = ["PeeringDbDataset", "PeeringDbRecord"]

#: PeeringDB "info_type" strings for each ground-truth class.  The paper
#: notes that PeeringDB's NSP and Cable/DSL/ISP map onto Transit/Access.
_PDB_TYPES: dict[NetworkType, str] = {
    NetworkType.TRANSIT_ACCESS: "NSP",
    NetworkType.CONTENT: "Content",
    NetworkType.ENTERPRISE: "Enterprise",
    NetworkType.EDUCATION_RESEARCH_NFP: "Educational/Research",
    NetworkType.IXP: "Route Server",
    NetworkType.UNKNOWN: "Not Disclosed",
}

_PDB_TO_TYPE: dict[str, NetworkType] = {
    "NSP": NetworkType.TRANSIT_ACCESS,
    "Cable/DSL/ISP": NetworkType.TRANSIT_ACCESS,
    "Content": NetworkType.CONTENT,
    "Enterprise": NetworkType.ENTERPRISE,
    "Educational/Research": NetworkType.EDUCATION_RESEARCH_NFP,
    "Non-Profit": NetworkType.EDUCATION_RESEARCH_NFP,
    "Route Server": NetworkType.IXP,
}


@dataclass(frozen=True)
class PeeringDbRecord:
    """One network record (subset of PeeringDB's ``net`` object)."""

    asn: int
    name: str
    info_type: str
    country: str

    @property
    def discloses_type(self) -> bool:
        return self.info_type not in ("", "Not Disclosed")

    @property
    def network_type(self) -> NetworkType | None:
        if not self.discloses_type:
            return None
        return _PDB_TO_TYPE.get(self.info_type)


@dataclass
class PeeringDbDataset:
    """Network records plus IXP peering-LAN address space."""

    records: dict[int, PeeringDbRecord] = field(default_factory=dict)
    ixp_lans: dict[str, Prefix] = field(default_factory=dict)
    ixp_route_servers: dict[int, str] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_topology(
        cls, ases: Iterable[AutonomousSystem], ixps: Iterable[Ixp]
    ) -> "PeeringDbDataset":
        """Build the dataset from the generated ground truth.

        ASes with ``in_peeringdb=False`` get no record; ASes with
        ``discloses_type=False`` get a record whose type is not disclosed,
        forcing consumers onto the CAIDA fallback exactly as in the paper.
        """
        dataset = cls()
        for autonomous_system in ases:
            if not autonomous_system.in_peeringdb:
                continue
            if autonomous_system.discloses_type:
                info_type = _PDB_TYPES[autonomous_system.network_type]
            else:
                info_type = "Not Disclosed"
            dataset.records[autonomous_system.asn] = PeeringDbRecord(
                asn=autonomous_system.asn,
                name=autonomous_system.name,
                info_type=info_type,
                country=autonomous_system.country,
            )
        for ixp in ixps:
            dataset.ixp_lans[ixp.name] = ixp.peering_lan
            dataset.ixp_route_servers[ixp.route_server_asn] = ixp.name
            dataset.records[ixp.route_server_asn] = PeeringDbRecord(
                asn=ixp.route_server_asn,
                name=ixp.name,
                info_type="Route Server",
                country=ixp.country,
            )
        return dataset

    # ------------------------------------------------------------------ #
    def get(self, asn: int) -> PeeringDbRecord | None:
        return self.records.get(asn)

    def network_type(self, asn: int) -> NetworkType | None:
        """Declared type, or None when absent/undisclosed (CAIDA fallback)."""
        record = self.records.get(asn)
        if record is None:
            return None
        return record.network_type

    def ixp_for_peer_ip(self, address: str) -> str | None:
        """Name of the IXP whose peering LAN contains ``address`` (or None)."""
        for name, lan in self.ixp_lans.items():
            if lan.contains_address(address):
                return name
        return None

    def ixp_for_route_server(self, asn: int) -> str | None:
        """Name of the IXP operating route server ``asn`` (or None)."""
        return self.ixp_route_servers.get(asn)

    def is_route_server_asn(self, asn: int) -> bool:
        return asn in self.ixp_route_servers

    def __len__(self) -> int:
        return len(self.records)
