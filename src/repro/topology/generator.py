"""Topology generator.

Builds a coherent simulated Internet -- ASes, relationships, IXPs, auxiliary
datasets and ground-truth blackholing services -- from a single seed.  The
default configuration is sized for fast test runs; ``TopologyConfig.paper_scale()``
approaches the provider/IXP counts of the paper's dictionary (Table 2) so
that the benchmark harness can compare distributions at a comparable scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.bgp.community import BLACKHOLE_COMMUNITY, Community, LargeCommunity
from repro.netutils.prefixes import Prefix
from repro.topology.asgraph import AsGraph
from repro.topology.blackholing import (
    BlackholingService,
    CommunityScope,
    DocumentationChannel,
)
from repro.topology.classification import AsClassificationDataset
from repro.topology.geography import DEFAULT_COUNTRY_MODEL, CountryModel
from repro.topology.ixp import Ixp
from repro.topology.peeringdb import PeeringDbDataset
from repro.topology.types import AutonomousSystem, NetworkType

__all__ = ["InternetTopology", "TopologyConfig", "TopologyGenerator"]

# Name fragments used to build operator names (purely cosmetic, but they feed
# the IRR/web documentation text the dictionary builder scrapes).
_NAME_PREFIXES = (
    "Nord", "Glo", "Tele", "Net", "Inter", "Euro", "Pan", "Alta", "Vega",
    "Hyper", "Meta", "Omni", "Terra", "Aqua", "Volt", "Sky", "Core", "Edge",
)
_NAME_SUFFIXES = {
    NetworkType.TRANSIT_ACCESS: ("Transit", "Telecom", "Networks", "Carrier", "Broadband"),
    NetworkType.CONTENT: ("Hosting", "Cloud", "CDN", "Datacenters", "Media"),
    NetworkType.ENTERPRISE: ("Corp", "Industries", "Bank", "Retail", "Systems"),
    NetworkType.EDUCATION_RESEARCH_NFP: ("University", "Research", "NREN", "Institute"),
    NetworkType.UNKNOWN: ("Net", "Online", "Communications"),
}

_IXP_NAMES = (
    "DE-CIX-SIM", "AMS-IX-SIM", "LINX-SIM", "EQUINIX-SIM", "MSK-IX-SIM",
    "HK-IX-SIM", "SGIX-SIM", "IX-BR-SIM", "FRANCE-IX-SIM", "JPNAP-SIM",
    "PL-IX-SIM", "UA-IX-SIM", "NL-IX-SIM", "SIX-SIM", "TORIX-SIM",
    "ESPANIX-SIM", "NETNOD-SIM", "SWISS-IX-SIM", "VIX-SIM", "NIX-CZ-SIM",
)


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters of the generated Internet."""

    seed: int = 7
    num_tier1: int = 6
    num_transit: int = 40
    num_access: int = 110
    num_content: int = 60
    num_enterprise: int = 25
    num_education: int = 15
    num_unknown: int = 12
    num_ixps: int = 14

    #: Fraction of each network type offering a *documented* blackholing
    #: service (Table 2 proportions: most providers are transit/access).
    documented_blackholing_fraction: dict[str, float] = field(
        default_factory=lambda: {
            NetworkType.TRANSIT_ACCESS.value: 0.55,
            NetworkType.CONTENT.value: 0.10,
            NetworkType.ENTERPRISE.value: 0.10,
            NetworkType.EDUCATION_RESEARCH_NFP.value: 0.25,
            NetworkType.UNKNOWN.value: 0.30,
        }
    )
    #: Fraction offering an *undocumented* service (the parenthesised column
    #: of Table 2), drawn from ASes not already documented providers.
    undocumented_blackholing_fraction: dict[str, float] = field(
        default_factory=lambda: {
            NetworkType.TRANSIT_ACCESS.value: 0.22,
            NetworkType.CONTENT.value: 0.06,
            NetworkType.ENTERPRISE.value: 0.05,
            NetworkType.EDUCATION_RESEARCH_NFP.value: 0.03,
            NetworkType.UNKNOWN.value: 0.08,
        }
    )
    #: Fraction of IXPs that offer blackholing (49 of 111 in the paper).
    ixp_blackholing_fraction: float = 0.45
    #: Fraction of blackholing IXPs that follow RFC 7999 (47 of 49).
    ixp_rfc7999_fraction: float = 0.95
    #: Fraction of providers violating the no-export recommendation by
    #: re-exporting blackholed prefixes.
    provider_leak_fraction: float = 0.35
    #: Extra /24 prefixes each AS originates besides its allocation.
    extra_prefixes_per_as: int = 2
    #: Fraction of ASes with a PeeringDB record / disclosing their type.
    peeringdb_coverage: float = 0.85
    peeringdb_disclosure: float = 0.90

    # ------------------------------------------------------------------ #
    @classmethod
    def small(cls, seed: int = 7) -> "TopologyConfig":
        """A tiny topology for unit tests (runs in well under a second)."""
        return cls(
            seed=seed,
            num_tier1=4,
            num_transit=12,
            num_access=30,
            num_content=16,
            num_enterprise=8,
            num_education=5,
            num_unknown=4,
            num_ixps=6,
        )

    @classmethod
    def default(cls, seed: int = 7) -> "TopologyConfig":
        return cls(seed=seed)

    @classmethod
    def paper_scale(cls, seed: int = 7) -> "TopologyConfig":
        """A topology whose provider counts approach the paper's Table 2."""
        return cls(
            seed=seed,
            num_tier1=13,
            num_transit=130,
            num_access=260,
            num_content=160,
            num_enterprise=70,
            num_education=55,
            num_unknown=45,
            num_ixps=50,
        )

    def with_seed(self, seed: int) -> "TopologyConfig":
        return replace(self, seed=seed)

    @property
    def total_ases(self) -> int:
        return (
            self.num_tier1
            + self.num_transit
            + self.num_access
            + self.num_content
            + self.num_enterprise
            + self.num_education
            + self.num_unknown
        )


@dataclass
class InternetTopology:
    """The generated Internet: ASes, graph, IXPs, datasets, ground truth."""

    config: TopologyConfig
    ases: dict[int, AutonomousSystem]
    graph: AsGraph
    ixps: list[Ixp]
    peeringdb: PeeringDbDataset
    classification: AsClassificationDataset
    blackholing_services: dict[int, BlackholingService]
    routing_communities: dict[int, list[Community]]

    # ------------------------------------------------------------------ #
    # AS lookups
    # ------------------------------------------------------------------ #
    def get_as(self, asn: int) -> AutonomousSystem:
        return self.ases[asn]

    def ases_of_type(self, network_type: NetworkType) -> list[AutonomousSystem]:
        return [a for a in self.ases.values() if a.network_type is network_type]

    def asns(self) -> list[int]:
        return sorted(self.ases)

    # ------------------------------------------------------------------ #
    # IXP lookups
    # ------------------------------------------------------------------ #
    def ixp_by_name(self, name: str) -> Ixp:
        for ixp in self.ixps:
            if ixp.name == name:
                return ixp
        raise KeyError(f"unknown IXP {name!r}")

    def ixp_by_route_server(self, asn: int) -> Ixp | None:
        for ixp in self.ixps:
            if ixp.route_server_asn == asn:
                return ixp
        return None

    def ixps_of_member(self, asn: int) -> list[Ixp]:
        return [ixp for ixp in self.ixps if ixp.is_member(asn)]

    # ------------------------------------------------------------------ #
    # Blackholing ground truth
    # ------------------------------------------------------------------ #
    def documented_services(self) -> list[BlackholingService]:
        return [s for s in self.blackholing_services.values() if s.is_documented]

    def undocumented_services(self) -> list[BlackholingService]:
        return [s for s in self.blackholing_services.values() if not s.is_documented]

    def service_for(self, provider_asn: int) -> BlackholingService | None:
        return self.blackholing_services.get(provider_asn)

    def services_for_community(self, community: Community) -> list[BlackholingService]:
        """All services triggered by a given community value."""
        return [
            service
            for service in self.blackholing_services.values()
            if community in service.communities
        ]

    def blackholing_providers_of(self, asn: int) -> list[BlackholingService]:
        """Services the given AS can use: its providers, peers and IXPs."""
        services: list[BlackholingService] = []
        for neighbour in sorted(
            self.graph.providers(asn) | self.graph.peers(asn)
        ):
            service = self.blackholing_services.get(neighbour)
            if service is not None and not service.is_ixp:
                services.append(service)
        for ixp in self.ixps_of_member(asn):
            service = self.blackholing_services.get(ixp.route_server_asn)
            if service is not None:
                services.append(service)
        return services

    # ------------------------------------------------------------------ #
    # Classification helper (PeeringDB first, CAIDA fallback, as in §4.1)
    # ------------------------------------------------------------------ #
    def classify(self, asn: int) -> NetworkType:
        declared = self.peeringdb.network_type(asn)
        if declared is not None:
            return declared
        return self.classification.classify(asn)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"InternetTopology(ases={len(self.ases)}, ixps={len(self.ixps)}, "
            f"services={len(self.blackholing_services)})"
        )


class TopologyGenerator:
    """Deterministic generator for :class:`InternetTopology` objects."""

    def __init__(
        self,
        config: TopologyConfig | None = None,
        country_model: CountryModel | None = None,
    ) -> None:
        self.config = config or TopologyConfig.default()
        self.country_model = country_model or DEFAULT_COUNTRY_MODEL
        self._rng = random.Random(self.config.seed)
        self._next_asn = 2000
        self._next_block = 0
        self._next_lan = 0

    # ------------------------------------------------------------------ #
    def generate(self) -> InternetTopology:
        """Build the full topology."""
        rng = self._rng
        ases = self._build_ases()
        graph = self._build_graph(ases)
        ixps = self._build_ixps(ases)
        services = self._assign_blackholing_services(ases, ixps)
        routing_communities = self._assign_routing_communities(ases, services)
        peeringdb = PeeringDbDataset.from_topology(ases.values(), ixps)
        classification = AsClassificationDataset.from_ases(ases.values())
        del rng  # all randomness already consumed deterministically
        return InternetTopology(
            config=self.config,
            ases=ases,
            graph=graph,
            ixps=ixps,
            peeringdb=peeringdb,
            classification=classification,
            blackholing_services=services,
            routing_communities=routing_communities,
        )

    # ------------------------------------------------------------------ #
    # AS construction
    # ------------------------------------------------------------------ #
    def _allocate_asn(self) -> int:
        asn = self._next_asn
        self._next_asn += 1
        if asn >= 59000:
            raise RuntimeError("ASN space for generated networks exhausted")
        return asn

    def _allocate_block(self, length: int = 16) -> Prefix:
        """Allocate the next /16 (default) block from 20.0.0.0 upward."""
        base = (20 << 24) + (self._next_block << 16)
        self._next_block += 1 << (16 - min(16, length)) if length < 16 else 1
        return Prefix.make(4, base, length)

    def _make_as(self, network_type: NetworkType, tier: int) -> AutonomousSystem:
        rng = self._rng
        asn = self._allocate_asn()
        prefix_pool = _NAME_SUFFIXES.get(network_type, _NAME_SUFFIXES[NetworkType.UNKNOWN])
        name = (
            f"{rng.choice(_NAME_PREFIXES)}{rng.choice(_NAME_PREFIXES).lower()} "
            f"{rng.choice(prefix_pool)}"
        )
        country = self.country_model.sample(rng)
        block = self._allocate_block(16)
        prefixes = [block]
        for index in range(self.config.extra_prefixes_per_as):
            # Additional /24s carved out of the allocation.
            prefixes.append(
                Prefix.make(4, block.network + ((index + 1) << 8), 24)
            )
        in_pdb = rng.random() < self.config.peeringdb_coverage
        discloses = in_pdb and rng.random() < self.config.peeringdb_disclosure
        if network_type is NetworkType.UNKNOWN:
            # "Unknown" networks are ones nobody can classify.
            in_pdb, discloses = False, False
        return AutonomousSystem(
            asn=asn,
            name=name,
            network_type=network_type,
            country=country,
            tier=tier,
            prefixes=prefixes,
            address_block=block,
            in_peeringdb=in_pdb,
            discloses_type=discloses,
        )

    def _build_ases(self) -> dict[int, AutonomousSystem]:
        config = self.config
        ases: dict[int, AutonomousSystem] = {}

        def add(count: int, network_type: NetworkType, tier: int) -> None:
            for _ in range(count):
                autonomous_system = self._make_as(network_type, tier)
                ases[autonomous_system.asn] = autonomous_system

        add(config.num_tier1, NetworkType.TRANSIT_ACCESS, tier=1)
        add(config.num_transit, NetworkType.TRANSIT_ACCESS, tier=2)
        add(config.num_access, NetworkType.TRANSIT_ACCESS, tier=3)
        add(config.num_content, NetworkType.CONTENT, tier=3)
        add(config.num_enterprise, NetworkType.ENTERPRISE, tier=3)
        add(config.num_education, NetworkType.EDUCATION_RESEARCH_NFP, tier=3)
        add(config.num_unknown, NetworkType.UNKNOWN, tier=3)
        return ases

    # ------------------------------------------------------------------ #
    # Relationship graph
    # ------------------------------------------------------------------ #
    def _build_graph(self, ases: dict[int, AutonomousSystem]) -> AsGraph:
        rng = self._rng
        graph = AsGraph()
        for autonomous_system in ases.values():
            graph.add_as(autonomous_system)

        tier1 = [a.asn for a in ases.values() if a.tier == 1]
        tier2 = [a.asn for a in ases.values() if a.tier == 2]
        stubs = [a.asn for a in ases.values() if a.tier == 3]

        # Tier-1 clique: every pair peers.
        for index, left in enumerate(tier1):
            for right in tier1[index + 1 :]:
                graph.add_p2p(left, right)

        # Tier-2 transit networks buy from 1-3 tier-1s and peer among
        # themselves with modest probability.
        for asn in tier2:
            providers = rng.sample(tier1, k=min(len(tier1), rng.randint(1, 3)))
            for provider in providers:
                graph.add_p2c(provider, asn)
        for index, left in enumerate(tier2):
            for right in tier2[index + 1 :]:
                if rng.random() < 0.08:
                    graph.add_p2p(left, right)

        # Stub networks buy from 1-3 providers, preferring tier-2 (80%) but
        # occasionally connecting straight to a tier-1 (multihoming is the
        # norm: mean provider count ~1.9).
        for asn in stubs:
            provider_count = rng.choices((1, 2, 3), weights=(35, 45, 20))[0]
            chosen: set[int] = set()
            while len(chosen) < provider_count:
                pool = tier2 if (rng.random() < 0.8 or not tier1) else tier1
                if not pool:
                    pool = tier2 or tier1
                chosen.add(rng.choice(pool))
            for provider in chosen:
                graph.add_p2c(provider, asn)

        # A sprinkling of bilateral stub-stub peerings (content networks peer
        # more aggressively).
        content = [a.asn for a in ases.values() if a.network_type is NetworkType.CONTENT]
        for asn in content:
            for _ in range(rng.randint(0, 2)):
                other = rng.choice(stubs)
                if other != asn and graph.relationship(asn, other) is None:
                    graph.add_p2p(asn, other)
        return graph

    # ------------------------------------------------------------------ #
    # IXPs
    # ------------------------------------------------------------------ #
    def _build_ixps(self, ases: dict[int, AutonomousSystem]) -> list[Ixp]:
        rng = self._rng
        config = self.config
        candidates = [
            a.asn
            for a in ases.values()
            if a.network_type in (NetworkType.TRANSIT_ACCESS, NetworkType.CONTENT)
        ]
        ixps: list[Ixp] = []
        for index in range(config.num_ixps):
            if index < len(_IXP_NAMES):
                name = _IXP_NAMES[index]
            else:
                name = f"SIM-IX-{index:02d}"
            route_server_asn = 59000 + index
            lan = Prefix.make(4, (185 << 24) | (7 << 16) | (self._next_lan << 8), 24)
            self._next_lan += 1
            country = self.country_model.sample_ixp_country(rng)
            # Member counts are heavy-tailed: a few very large IXPs, many
            # small ones (the paper: "often in the order of hundreds").
            target = min(
                len(candidates),
                max(4, int(rng.paretovariate(1.1) * 6)),
            )
            target = min(target, 120)
            members = rng.sample(candidates, k=target)
            ixps.append(
                Ixp(
                    name=name,
                    route_server_asn=route_server_asn,
                    peering_lan=lan,
                    country=country,
                    members=sorted(members),
                    offers_blackholing=False,  # assigned later
                    has_pch_collector=rng.random() < 0.6,
                    rs_transparent=rng.random() < 0.8,
                )
            )
        return ixps

    # ------------------------------------------------------------------ #
    # Blackholing services (ground truth)
    # ------------------------------------------------------------------ #
    def _pick_community_value(self) -> int:
        """Draw a community value following the paper's conventions.

        51% use ``ASN:666``, with ``ASN:66`` and ``ASN:999`` the next most
        popular values; the rest use miscellaneous values such as 9999.
        """
        roll = self._rng.random()
        if roll < 0.51:
            return 666
        if roll < 0.70:
            return 66
        if roll < 0.85:
            return 999
        return self._rng.choice((9999, 664, 665, 11666, 3000))

    def _assign_blackholing_services(
        self, ases: dict[int, AutonomousSystem], ixps: list[Ixp]
    ) -> dict[int, BlackholingService]:
        rng = self._rng
        config = self.config
        services: dict[int, BlackholingService] = {}

        # Shared (non-attributable) community used by a handful of networks.
        shared_community = Community(0, 666)
        shared_quota = 2

        doc_channels = (
            (DocumentationChannel.IRR, 0.58),
            (DocumentationChannel.WEB, 0.38),
            (DocumentationChannel.PRIVATE, 0.04),
        )

        large_community_budget = 1  # exactly one provider blackholes via RFC 8092

        for autonomous_system in ases.values():
            # IXP route servers are handled separately below.
            type_key = autonomous_system.network_type.value
            documented_fraction = config.documented_blackholing_fraction.get(type_key, 0.0)
            undocumented_fraction = config.undocumented_blackholing_fraction.get(type_key, 0.0)
            # Only networks with customers or peers can usefully offer the
            # service; stub enterprises can still offer it to peers.
            roll = rng.random()
            documented = roll < documented_fraction
            undocumented = (not documented) and roll < documented_fraction + undocumented_fraction
            if not documented and not undocumented:
                continue

            asn = autonomous_system.asn
            communities: dict[Community, CommunityScope] = {}
            large_communities: list[LargeCommunity] = []
            shares = False

            if documented and shared_quota > 0 and rng.random() < 0.03:
                communities[shared_community] = CommunityScope.GLOBAL
                shared_quota -= 1
                shares = True
            elif documented and large_community_budget > 0 and rng.random() < 0.01:
                large_communities.append(LargeCommunity(asn, 666, 0))
                large_community_budget -= 1
            else:
                communities[Community(asn, self._pick_community_value())] = (
                    CommunityScope.GLOBAL
                )

            # Some providers add region-scoped communities.
            if documented and communities and rng.random() < 0.15:
                base = next(iter(communities))
                communities[Community(asn, base.value + 1)] = CommunityScope.EUROPE
                communities[Community(asn, base.value + 2)] = CommunityScope.NORTH_AMERICA

            if documented:
                documentation = rng.choices(
                    [channel for channel, _ in doc_channels],
                    weights=[weight for _, weight in doc_channels],
                )[0]
            else:
                documentation = DocumentationChannel.NONE

            services[asn] = BlackholingService(
                provider_asn=asn,
                communities=communities,
                large_communities=large_communities,
                documentation=documentation,
                accepts_max_length=32,
                requires_origin_auth=rng.random() < 0.8,
                propagates_blackhole_routes=rng.random() < config.provider_leak_fraction,
                shares_community=shares,
            )

        # IXPs: a fraction offer blackholing, almost all via RFC 7999.  The
        # count is exact (not a per-IXP coin flip) so that even tiny test
        # topologies contain IXP blackholing providers.
        blackholing_ixp_count = max(1, round(len(ixps) * config.ixp_blackholing_fraction))
        blackholing_ixps = set(
            ixp.name for ixp in rng.sample(ixps, k=min(blackholing_ixp_count, len(ixps)))
        )
        for ixp in ixps:
            if ixp.name not in blackholing_ixps:
                continue
            ixp.offers_blackholing = True
            if rng.random() < config.ixp_rfc7999_fraction:
                community = BLACKHOLE_COMMUNITY
            else:
                community = Community(min(ixp.route_server_asn, 0xFFFF), 666)
            ixp.blackhole_community = community
            ixp.documents_blackholing = rng.random() < 0.95
            services[ixp.route_server_asn] = BlackholingService(
                provider_asn=ixp.route_server_asn,
                communities={community: CommunityScope.GLOBAL},
                documentation=(
                    DocumentationChannel.WEB
                    if ixp.documents_blackholing
                    else DocumentationChannel.NONE
                ),
                accepts_max_length=32,
                requires_origin_auth=True,
                propagates_blackhole_routes=False,
                shares_community=community == BLACKHOLE_COMMUNITY,
                ixp_name=ixp.name,
            )
        return services

    # ------------------------------------------------------------------ #
    # Non-blackhole (informational) communities
    # ------------------------------------------------------------------ #
    def _assign_routing_communities(
        self,
        ases: dict[int, AutonomousSystem],
        services: dict[int, BlackholingService],
    ) -> dict[int, list[Community]]:
        """Give transit networks informational communities for regular routes.

        These populate the non-blackhole community dictionary used for the
        Figure 2 comparison, and include the deliberate trap from the paper:
        a network using ``ASN:666`` to tag peering routes while its actual
        blackhole community is a different value.
        """
        rng = self._rng
        routing: dict[int, list[Community]] = {}
        trap_budget = 2
        for autonomous_system in ases.values():
            if not autonomous_system.is_transit:
                continue
            asn = autonomous_system.asn
            tags = [
                Community(asn, 100),   # learned from customer
                Community(asn, 200),   # learned from peer
                Community(asn, 3000 + rng.randint(0, 9)),  # ingress location
            ]
            service = services.get(asn)
            if (
                trap_budget > 0
                and service is not None
                and service.primary_community is not None
                and service.primary_community.value != 666
                and rng.random() < 0.25
            ):
                # Level3-style trap: 666 tags peering routes, not blackholing.
                tags.append(Community(asn, 666))
                trap_budget -= 1
            routing[asn] = tags
        return routing
