"""Internet Exchange Points.

IXPs are the second-largest group of blackholing providers in the paper.
Each simulated IXP has a layer-2 peering LAN, a route server with its own
ASN, a member list, and (for ~half of them, like the 49/111 in the study) a
blackholing service advertised through the RFC 7999 ``65535:666`` community
and a dedicated blackholing next-hop IP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.community import BLACKHOLE_COMMUNITY, Community
from repro.netutils.prefixes import Prefix

__all__ = ["Ixp"]


@dataclass
class Ixp:
    """One simulated Internet exchange point."""

    name: str
    route_server_asn: int
    peering_lan: Prefix
    country: str
    members: list[int] = field(default_factory=list)
    offers_blackholing: bool = False
    blackhole_community: Community = BLACKHOLE_COMMUNITY
    has_pch_collector: bool = False
    documents_blackholing: bool = True
    #: Transparent route servers do not insert their own ASN into the AS
    #: path of redistributed routes; non-transparent ones do, which is one of
    #: the two IXP-detection signals of Section 4.2.
    rs_transparent: bool = True

    def __post_init__(self) -> None:
        if self.peering_lan.length > 29:
            raise ValueError("peering LAN too small to number members")

    # ------------------------------------------------------------------ #
    @property
    def member_count(self) -> int:
        return len(self.members)

    @property
    def blackholing_ip(self) -> str:
        """The null-interface next-hop address of the blackholing service.

        By convention (and per the paper), the last octet ``.66`` of the
        peering LAN is the most common choice for IPv4.
        """
        return self.peering_lan.address_at(66 % self.peering_lan.num_addresses)

    @property
    def route_server_ip(self) -> str:
        """Address of the route server on the peering LAN."""
        return self.peering_lan.address_at(1)

    def member_ip(self, member_asn: int) -> str:
        """The peering-LAN address assigned to a member AS.

        Addresses are assigned deterministically by member order so that the
        collector feeds, the PeeringDB LAN records and the inference engine
        all agree.
        """
        try:
            index = self.members.index(member_asn)
        except ValueError as exc:
            raise KeyError(f"AS{member_asn} is not a member of {self.name}") from exc
        # Offset 100 keeps member addresses clear of the route server (.1)
        # and the blackholing IP (.66).
        offset = 100 + index
        if offset >= self.peering_lan.num_addresses:
            raise ValueError(f"peering LAN of {self.name} exhausted")
        return self.peering_lan.address_at(offset)

    def is_member(self, asn: int) -> bool:
        return asn in self.members

    def contains_peer_ip(self, address: str) -> bool:
        """True if the address belongs to this IXP's peering LAN.

        This is the check the inference methodology performs against
        PeeringDB data to attribute a route-server feed to an IXP
        (Section 4.2).
        """
        return self.peering_lan.contains_address(address)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Ixp({self.name!r}, rs=AS{self.route_server_asn}, "
            f"members={len(self.members)}, blackholing={self.offers_blackholing})"
        )
