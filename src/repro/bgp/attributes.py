"""BGP path attributes.

Only the attributes that matter for the methodology are modelled richly
(AS_PATH, NEXT_HOP, COMMUNITIES); the rest (ORIGIN, MED, LOCAL_PREF,
ATOMIC_AGGREGATE, AGGREGATOR) are carried so that wire round-trips and the
routing simulator stay faithful.

The AS_PATH helpers implement the two operations the inference engine needs:

* prepending removal -- "we infer the blackholing user as the AS before the
  blackholing provider along the AS path (after removing AS path
  prepending)" (Section 4.2);
* neighbour lookup -- finding the AS hop immediately before a given ASN.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.bgp.community import CommunitySet

__all__ = ["AsPath", "Origin", "PathAttributes", "AttributeFlag", "AttributeType"]


class Origin(enum.IntEnum):
    """BGP ORIGIN attribute values."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class AttributeFlag(enum.IntFlag):
    """Path attribute flags (high nibble of the flags octet)."""

    OPTIONAL = 0x80
    TRANSITIVE = 0x40
    PARTIAL = 0x20
    EXTENDED_LENGTH = 0x10


class AttributeType(enum.IntEnum):
    """Path attribute type codes used by the wire codec."""

    ORIGIN = 1
    AS_PATH = 2
    NEXT_HOP = 3
    MULTI_EXIT_DISC = 4
    LOCAL_PREF = 5
    ATOMIC_AGGREGATE = 6
    AGGREGATOR = 7
    COMMUNITIES = 8
    MP_REACH_NLRI = 14
    MP_UNREACH_NLRI = 15
    EXTENDED_COMMUNITIES = 16
    AS4_PATH = 17
    LARGE_COMMUNITIES = 32


@dataclass(frozen=True)
class AsPath:
    """An AS_PATH as an ordered tuple of AS_SEQUENCE hops.

    AS_SETs are not modelled (they are deprecated and play no role in the
    paper's datasets); prepending is simply repeated hops.
    """

    hops: tuple[int, ...] = ()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_hops(cls, hops: Iterable[int]) -> "AsPath":
        return cls(tuple(int(h) for h in hops))

    @classmethod
    def from_string(cls, text: str) -> "AsPath":
        """Parse a space-separated AS path string (``"3356 1299 64500"``)."""
        cleaned = text.strip()
        if not cleaned:
            return cls(())
        return cls(tuple(int(token) for token in cleaned.split()))

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.hops)

    def __iter__(self):
        return iter(self.hops)

    def __contains__(self, asn: object) -> bool:
        return asn in self.hops

    def __str__(self) -> str:  # pragma: no cover - trivial
        return " ".join(str(hop) for hop in self.hops)

    # ------------------------------------------------------------------ #
    @property
    def origin_as(self) -> int | None:
        """The rightmost (originating) ASN, or None for an empty path."""
        return self.hops[-1] if self.hops else None

    @property
    def peer_as(self) -> int | None:
        """The leftmost ASN -- the collector-facing neighbour."""
        return self.hops[0] if self.hops else None

    def without_prepending(self) -> "AsPath":
        """Collapse consecutive duplicate hops (AS-path prepending)."""
        collapsed: list[int] = []
        for hop in self.hops:
            if not collapsed or collapsed[-1] != hop:
                collapsed.append(hop)
        return AsPath(tuple(collapsed))

    def unique_hops(self) -> tuple[int, ...]:
        """Unique ASNs in path order (first occurrence wins)."""
        seen: list[int] = []
        for hop in self.hops:
            if hop not in seen:
                seen.append(hop)
        return tuple(seen)

    def as_distance_from_collector(self, asn: int) -> int | None:
        """Number of AS hops between the collector peer and ``asn``.

        Returns 0 when ``asn`` is the peer itself, 1 when it is the next
        hop, ..., and None when ``asn`` is not on the (deprepended) path.
        Used for the Figure 7(c) propagation analysis.
        """
        collapsed = self.without_prepending().hops
        for index, hop in enumerate(collapsed):
            if hop == asn:
                return index
        return None

    def hop_before(self, asn: int) -> int | None:
        """The ASN immediately *before* ``asn`` on the deprepended path.

        "Before" means closer to the origin (to the right in the textual
        path), because the blackholing user is the customer announcing the
        prefix towards the blackholing provider.  Returns None if ``asn`` is
        the origin or absent.
        """
        collapsed = self.without_prepending().hops
        for index, hop in enumerate(collapsed):
            if hop == asn:
                if index + 1 < len(collapsed):
                    return collapsed[index + 1]
                return None
        return None

    def prepend(self, asn: int, times: int = 1) -> "AsPath":
        """Return a new path with ``asn`` prepended ``times`` times."""
        if times < 1:
            raise ValueError("prepend count must be >= 1")
        return AsPath((asn,) * times + self.hops)

    def has_loop(self) -> bool:
        """True if any ASN appears in two non-adjacent runs (routing loop)."""
        collapsed = self.without_prepending().hops
        return len(collapsed) != len(set(collapsed))


@dataclass(frozen=True)
class PathAttributes:
    """The path attributes attached to a BGP announcement."""

    origin: Origin = Origin.IGP
    as_path: AsPath = field(default_factory=AsPath)
    next_hop: str | None = None
    med: int | None = None
    local_pref: int | None = None
    atomic_aggregate: bool = False
    aggregator: tuple[int, str] | None = None
    communities: CommunitySet = field(default_factory=CommunitySet)

    # ------------------------------------------------------------------ #
    def with_communities(self, communities: CommunitySet) -> "PathAttributes":
        return replace(self, communities=communities)

    def with_as_path(self, as_path: AsPath | Sequence[int]) -> "PathAttributes":
        if not isinstance(as_path, AsPath):
            as_path = AsPath.from_hops(as_path)
        return replace(self, as_path=as_path)

    def with_next_hop(self, next_hop: str) -> "PathAttributes":
        return replace(self, next_hop=next_hop)

    def prepended(self, asn: int, times: int = 1) -> "PathAttributes":
        """Return attributes with the AS path prepended by ``asn``."""
        return replace(self, as_path=self.as_path.prepend(asn, times))
