"""BGP UPDATE wire-format codec.

Archived BGP data (the MRT dumps the paper parses through BGPStream and the
custom PCH/CDN parsers) stores raw BGP UPDATE messages.  To exercise the same
code path, the simulator can serialise every generated update into genuine
BGP wire format and the stream layer can decode it back, so the inference
engine never "cheats" by looking at simulator-internal objects.

The codec implements RFC 4271 UPDATE messages with:

* 4-byte AS numbers in AS_PATH (RFC 6793 style, as BGPStream normalises);
* COMMUNITIES (RFC 1997), LARGE_COMMUNITIES (RFC 8092) and
  EXTENDED_COMMUNITIES (RFC 4360) attributes;
* IPv4 NLRI/withdrawals in the classic fields and IPv6 via
  MP_REACH_NLRI/MP_UNREACH_NLRI (RFC 4760).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.bgp.attributes import (
    AsPath,
    AttributeFlag,
    AttributeType,
    Origin,
    PathAttributes,
)
from repro.bgp.community import (
    Community,
    CommunitySet,
    ExtendedCommunity,
    LargeCommunity,
)
from repro.netutils.prefixes import Prefix, addr_to_int, int_to_addr

__all__ = ["DecodedUpdate", "decode_update", "encode_update", "WireError"]

BGP_HEADER_MARKER = b"\xff" * 16
BGP_MSG_UPDATE = 2

_AFI_IPV4 = 1
_AFI_IPV6 = 2
_SAFI_UNICAST = 1


class WireError(ValueError):
    """Raised when a BGP message cannot be encoded or decoded."""


# --------------------------------------------------------------------------- #
# Prefix (NLRI) encoding
# --------------------------------------------------------------------------- #
def _encode_nlri(prefix: Prefix) -> bytes:
    """Encode one prefix in NLRI form: length octet + minimal network bytes."""
    nbytes = (prefix.length + 7) // 8
    network_bytes = prefix.network.to_bytes(prefix.bits // 8, "big")[:nbytes]
    return bytes([prefix.length]) + network_bytes


def _decode_nlri(data: bytes, offset: int, family: int) -> tuple[Prefix, int]:
    """Decode one prefix starting at ``offset``; returns (prefix, new offset)."""
    if offset >= len(data):
        raise WireError("truncated NLRI")
    length = data[offset]
    offset += 1
    nbytes = (length + 7) // 8
    if offset + nbytes > len(data):
        raise WireError("truncated NLRI prefix bytes")
    total_bytes = 4 if family == 4 else 16
    # Left-shift instead of padding with a byte copy so memoryview input
    # (the zero-copy MRT scan) decodes without concatenation.
    network = int.from_bytes(data[offset : offset + nbytes], "big") << (
        8 * (total_bytes - nbytes)
    )
    offset += nbytes
    return Prefix.make(family, network, length), offset


def _decode_nlri_list(data: bytes, family: int) -> list[Prefix]:
    prefixes: list[Prefix] = []
    offset = 0
    while offset < len(data):
        prefix, offset = _decode_nlri(data, offset, family)
        prefixes.append(prefix)
    return prefixes


# --------------------------------------------------------------------------- #
# Attribute encoding
# --------------------------------------------------------------------------- #
def _encode_attribute(type_code: int, value: bytes, optional: bool = False) -> bytes:
    flags = AttributeFlag.TRANSITIVE
    if optional:
        flags |= AttributeFlag.OPTIONAL
    if len(value) > 255:
        flags |= AttributeFlag.EXTENDED_LENGTH
        header = struct.pack("!BBH", int(flags), type_code, len(value))
    else:
        header = struct.pack("!BBB", int(flags), type_code, len(value))
    return header + value


def _encode_as_path(as_path: AsPath) -> bytes:
    hops = as_path.hops
    if not hops:
        return b""
    chunks: list[bytes] = []
    # AS_SEQUENCE segments of at most 255 hops each, 4-byte ASNs.
    for start in range(0, len(hops), 255):
        segment = hops[start : start + 255]
        chunks.append(struct.pack("!BB", 2, len(segment)))
        chunks.append(b"".join(struct.pack("!I", asn) for asn in segment))
    return b"".join(chunks)


def _decode_as_path(value: bytes) -> AsPath:
    hops: list[int] = []
    offset = 0
    while offset < len(value):
        if offset + 2 > len(value):
            raise WireError("truncated AS_PATH segment header")
        segment_type, count = value[offset], value[offset + 1]
        offset += 2
        needed = count * 4
        if offset + needed > len(value):
            raise WireError("truncated AS_PATH segment")
        asns = struct.unpack(f"!{count}I", value[offset : offset + needed])
        offset += needed
        if segment_type == 2:  # AS_SEQUENCE
            hops.extend(asns)
        elif segment_type == 1:  # AS_SET: keep as ordered hops (sorted) for determinism
            hops.extend(sorted(asns))
        else:
            raise WireError(f"unsupported AS_PATH segment type {segment_type}")
    return AsPath(tuple(hops))


def _encode_communities(communities: frozenset[Community]) -> bytes:
    return b"".join(
        struct.pack("!I", community.to_int()) for community in sorted(communities)
    )


def _decode_communities(value: bytes) -> list[Community]:
    if len(value) % 4 != 0:
        raise WireError("COMMUNITIES length not a multiple of 4")
    return [
        Community.from_int(struct.unpack("!I", value[offset : offset + 4])[0])
        for offset in range(0, len(value), 4)
    ]


def _encode_large_communities(communities: frozenset[LargeCommunity]) -> bytes:
    return b"".join(
        struct.pack("!III", c.global_admin, c.local_data_1, c.local_data_2)
        for c in sorted(communities)
    )


def _decode_large_communities(value: bytes) -> list[LargeCommunity]:
    if len(value) % 12 != 0:
        raise WireError("LARGE_COMMUNITIES length not a multiple of 12")
    result = []
    for offset in range(0, len(value), 12):
        ga, l1, l2 = struct.unpack("!III", value[offset : offset + 12])
        result.append(LargeCommunity(ga, l1, l2))
    return result


def _encode_next_hop_v4(next_hop: str) -> bytes:
    value, family = addr_to_int(next_hop)
    if family != 4:
        raise WireError("classic NEXT_HOP attribute only carries IPv4")
    return struct.pack("!I", value)


# --------------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------------- #
@dataclass
class DecodedUpdate:
    """The result of decoding one BGP UPDATE message."""

    announced: list[Prefix] = field(default_factory=list)
    withdrawn: list[Prefix] = field(default_factory=list)
    attributes: PathAttributes = field(default_factory=PathAttributes)


def encode_update(
    announced: list[Prefix] | None = None,
    withdrawn: list[Prefix] | None = None,
    attributes: PathAttributes | None = None,
) -> bytes:
    """Encode one BGP UPDATE message (header included).

    IPv4 prefixes go into the classic withdrawn/NLRI fields; IPv6 prefixes
    are encoded through MP_REACH_NLRI / MP_UNREACH_NLRI attributes.
    """
    announced = announced or []
    withdrawn = withdrawn or []
    attributes = attributes or PathAttributes()

    announced_v4 = [p for p in announced if p.family == 4]
    announced_v6 = [p for p in announced if p.family == 6]
    withdrawn_v4 = [p for p in withdrawn if p.family == 4]
    withdrawn_v6 = [p for p in withdrawn if p.family == 6]

    attr_chunks: list[bytes] = []
    if announced:
        attr_chunks.append(
            _encode_attribute(
                AttributeType.ORIGIN, bytes([int(attributes.origin)])
            )
        )
        attr_chunks.append(
            _encode_attribute(AttributeType.AS_PATH, _encode_as_path(attributes.as_path))
        )
        if announced_v4:
            next_hop = attributes.next_hop or "0.0.0.0"
            attr_chunks.append(
                _encode_attribute(AttributeType.NEXT_HOP, _encode_next_hop_v4(next_hop))
            )
    if attributes.med is not None:
        attr_chunks.append(
            _encode_attribute(
                AttributeType.MULTI_EXIT_DISC,
                struct.pack("!I", attributes.med),
                optional=True,
            )
        )
    if attributes.local_pref is not None:
        attr_chunks.append(
            _encode_attribute(
                AttributeType.LOCAL_PREF, struct.pack("!I", attributes.local_pref)
            )
        )
    communities = attributes.communities
    if communities.standard:
        attr_chunks.append(
            _encode_attribute(
                AttributeType.COMMUNITIES,
                _encode_communities(communities.standard),
                optional=True,
            )
        )
    if communities.large:
        attr_chunks.append(
            _encode_attribute(
                AttributeType.LARGE_COMMUNITIES,
                _encode_large_communities(communities.large),
                optional=True,
            )
        )
    if communities.extended:
        attr_chunks.append(
            _encode_attribute(
                AttributeType.EXTENDED_COMMUNITIES,
                b"".join(c.to_bytes() for c in sorted(communities.extended)),
                optional=True,
            )
        )
    if announced_v6:
        next_hop = attributes.next_hop or "::"
        nh_value, nh_family = addr_to_int(next_hop)
        if nh_family != 6:
            nh_bytes = b"\x00" * 16
        else:
            nh_bytes = nh_value.to_bytes(16, "big")
        mp_reach = (
            struct.pack("!HBB", _AFI_IPV6, _SAFI_UNICAST, len(nh_bytes))
            + nh_bytes
            + b"\x00"  # reserved
            + b"".join(_encode_nlri(p) for p in announced_v6)
        )
        attr_chunks.append(
            _encode_attribute(AttributeType.MP_REACH_NLRI, mp_reach, optional=True)
        )
    if withdrawn_v6:
        mp_unreach = struct.pack("!HB", _AFI_IPV6, _SAFI_UNICAST) + b"".join(
            _encode_nlri(p) for p in withdrawn_v6
        )
        attr_chunks.append(
            _encode_attribute(AttributeType.MP_UNREACH_NLRI, mp_unreach, optional=True)
        )

    withdrawn_bytes = b"".join(_encode_nlri(p) for p in withdrawn_v4)
    nlri_bytes = b"".join(_encode_nlri(p) for p in announced_v4)
    attrs_bytes = b"".join(attr_chunks)

    body = (
        struct.pack("!H", len(withdrawn_bytes))
        + withdrawn_bytes
        + struct.pack("!H", len(attrs_bytes))
        + attrs_bytes
        + nlri_bytes
    )
    total_length = 19 + len(body)
    if total_length > 4096:
        raise WireError(f"UPDATE message too large ({total_length} bytes)")
    header = BGP_HEADER_MARKER + struct.pack("!HB", total_length, BGP_MSG_UPDATE)
    return header + body


def decode_update(data: bytes) -> DecodedUpdate:
    """Decode one BGP UPDATE message (header included)."""
    if len(data) < 19:
        raise WireError("BGP message shorter than header")
    if data[:16] != BGP_HEADER_MARKER:
        raise WireError("bad BGP marker")
    total_length, msg_type = struct.unpack("!HB", data[16:19])
    if msg_type != BGP_MSG_UPDATE:
        raise WireError(f"not an UPDATE message (type {msg_type})")
    if total_length != len(data):
        raise WireError("BGP message length mismatch")
    body = data[19:]

    if len(body) < 2:
        raise WireError("truncated UPDATE body")
    withdrawn_len = struct.unpack("!H", body[:2])[0]
    offset = 2
    withdrawn_raw = body[offset : offset + withdrawn_len]
    if len(withdrawn_raw) != withdrawn_len:
        raise WireError("truncated withdrawn routes field")
    offset += withdrawn_len

    if len(body) < offset + 2:
        raise WireError("truncated path attribute length")
    attrs_len = struct.unpack("!H", body[offset : offset + 2])[0]
    offset += 2
    attrs_raw = body[offset : offset + attrs_len]
    if len(attrs_raw) != attrs_len:
        raise WireError("truncated path attributes")
    offset += attrs_len
    nlri_raw = body[offset:]

    result = DecodedUpdate()
    result.withdrawn.extend(_decode_nlri_list(withdrawn_raw, family=4))
    result.announced.extend(_decode_nlri_list(nlri_raw, family=4))

    origin = Origin.IGP
    as_path = AsPath()
    next_hop: str | None = None
    med: int | None = None
    local_pref: int | None = None
    standard: list[Community] = []
    large: list[LargeCommunity] = []
    extended: list[ExtendedCommunity] = []

    attr_offset = 0
    while attr_offset < len(attrs_raw):
        if attr_offset + 3 > len(attrs_raw):
            raise WireError("truncated attribute header")
        flags = attrs_raw[attr_offset]
        type_code = attrs_raw[attr_offset + 1]
        if flags & AttributeFlag.EXTENDED_LENGTH:
            if attr_offset + 4 > len(attrs_raw):
                raise WireError("truncated extended attribute header")
            length = struct.unpack("!H", attrs_raw[attr_offset + 2 : attr_offset + 4])[0]
            attr_offset += 4
        else:
            length = attrs_raw[attr_offset + 2]
            attr_offset += 3
        value = attrs_raw[attr_offset : attr_offset + length]
        if len(value) != length:
            raise WireError("truncated attribute value")
        attr_offset += length

        if type_code == AttributeType.ORIGIN:
            origin = Origin(value[0])
        elif type_code == AttributeType.AS_PATH:
            as_path = _decode_as_path(value)
        elif type_code == AttributeType.NEXT_HOP:
            next_hop = int_to_addr(struct.unpack("!I", value)[0], 4)
        elif type_code == AttributeType.MULTI_EXIT_DISC:
            med = struct.unpack("!I", value)[0]
        elif type_code == AttributeType.LOCAL_PREF:
            local_pref = struct.unpack("!I", value)[0]
        elif type_code == AttributeType.COMMUNITIES:
            standard.extend(_decode_communities(value))
        elif type_code == AttributeType.LARGE_COMMUNITIES:
            large.extend(_decode_large_communities(value))
        elif type_code == AttributeType.EXTENDED_COMMUNITIES:
            if len(value) % 8 != 0:
                raise WireError("EXTENDED_COMMUNITIES length not a multiple of 8")
            extended.extend(
                ExtendedCommunity.from_bytes(value[i : i + 8])
                for i in range(0, len(value), 8)
            )
        elif type_code == AttributeType.MP_REACH_NLRI:
            afi, safi, nh_len = struct.unpack("!HBB", value[:4])
            nh_raw = value[4 : 4 + nh_len]
            rest = value[4 + nh_len + 1 :]  # skip reserved octet
            if afi == _AFI_IPV6 and safi == _SAFI_UNICAST:
                if len(nh_raw) >= 16:
                    next_hop = int_to_addr(int.from_bytes(nh_raw[:16], "big"), 6)
                result.announced.extend(_decode_nlri_list(rest, family=6))
        elif type_code == AttributeType.MP_UNREACH_NLRI:
            afi, safi = struct.unpack("!HB", value[:3])
            if afi == _AFI_IPV6 and safi == _SAFI_UNICAST:
                result.withdrawn.extend(_decode_nlri_list(value[3:], family=6))
        # Unknown attributes are skipped silently, as a BGP speaker would.

    result.attributes = PathAttributes(
        origin=origin,
        as_path=as_path,
        next_hop=next_hop,
        med=med,
        local_pref=local_pref,
        communities=CommunitySet(standard, large, extended),
    )
    return result
