"""BGP protocol substrate.

This package models the parts of BGP that the paper's methodology touches:

* :mod:`repro.bgp.community` -- RFC 1997 standard communities, RFC 4360
  extended communities, and RFC 8092 large communities, including the
  well-known RFC 7999 BLACKHOLE community.
* :mod:`repro.bgp.attributes` -- path attributes (ORIGIN, AS_PATH, NEXT_HOP,
  COMMUNITIES, LARGE_COMMUNITIES, ...), with AS-path prepending helpers.
* :mod:`repro.bgp.message` -- the update/withdraw message model used by the
  simulator, the stream layer, and the inference engine.
* :mod:`repro.bgp.wire` -- a real BGP UPDATE wire-format encoder/decoder so
  that collector feeds can round-trip through bytes exactly as archived MRT
  data would.
* :mod:`repro.bgp.rib` -- per-peer Routing Information Bases and table dumps.
"""

from repro.bgp.attributes import AsPath, Origin, PathAttributes
from repro.bgp.community import (
    BLACKHOLE_COMMUNITY,
    Community,
    CommunitySet,
    ExtendedCommunity,
    LargeCommunity,
    NO_ADVERTISE,
    NO_EXPORT,
    parse_community,
)
from repro.bgp.message import BgpMessage, BgpUpdate, BgpWithdrawal
from repro.bgp.rib import Rib, RibEntry, RouteTable
from repro.bgp.wire import decode_update, encode_update

__all__ = [
    "AsPath",
    "BLACKHOLE_COMMUNITY",
    "BgpMessage",
    "BgpUpdate",
    "BgpWithdrawal",
    "Community",
    "CommunitySet",
    "ExtendedCommunity",
    "LargeCommunity",
    "NO_ADVERTISE",
    "NO_EXPORT",
    "Origin",
    "PathAttributes",
    "Rib",
    "RibEntry",
    "RouteTable",
    "decode_update",
    "encode_update",
    "parse_community",
]
