"""Routing Information Bases.

Two RIB flavours are provided:

* :class:`RouteTable` -- the RIB of one simulated router/AS: best route per
  prefix, used by the routing simulator and the looking-glass substrate.
* :class:`Rib` -- a *collector-side* RIB: the set of routes a BGP collector
  has learned, organised per (peer, prefix) pair.  Its :meth:`Rib.dump`
  produces the "oldest BGP table dump" that initialises the inference engine
  (Section 4.2, "Initialization Based on BGP Table Dump").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.bgp.attributes import PathAttributes
from repro.bgp.message import BgpUpdate, BgpWithdrawal
from repro.netutils.prefixes import Prefix

__all__ = ["Rib", "RibEntry", "RouteTable"]


@dataclass(frozen=True)
class RibEntry:
    """One route as stored in a collector RIB."""

    prefix: Prefix
    peer_ip: str
    peer_as: int
    attributes: PathAttributes
    timestamp: float

    def to_update(self, collector: str, timestamp: float | None = None) -> BgpUpdate:
        """Re-materialise the entry as a BGP announcement message."""
        return BgpUpdate(
            timestamp=self.timestamp if timestamp is None else timestamp,
            collector=collector,
            peer_ip=self.peer_ip,
            peer_as=self.peer_as,
            prefix=self.prefix,
            attributes=self.attributes,
        )


class Rib:
    """Collector-side RIB keyed on ``(peer_ip, prefix)``.

    The collector keeps one route per peer per prefix (Adj-RIB-In view),
    which matches how RIS/RouteViews table dumps are structured and how the
    paper tracks blackholing "at the granularity of individual BGP peers".
    """

    def __init__(self, collector: str) -> None:
        self.collector = collector
        self._routes: dict[tuple[str, Prefix], RibEntry] = {}

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[RibEntry]:
        return iter(self._routes.values())

    def __contains__(self, key: tuple[str, Prefix]) -> bool:
        return key in self._routes

    # ------------------------------------------------------------------ #
    def apply(self, message: BgpUpdate | BgpWithdrawal) -> None:
        """Apply an announcement or withdrawal to the RIB."""
        key = (message.peer_ip, message.prefix)
        if isinstance(message, BgpUpdate):
            self._routes[key] = RibEntry(
                prefix=message.prefix,
                peer_ip=message.peer_ip,
                peer_as=message.peer_as,
                attributes=message.attributes,
                timestamp=message.timestamp,
            )
        else:
            self._routes.pop(key, None)

    def apply_all(self, messages: Iterable[BgpUpdate | BgpWithdrawal]) -> None:
        for message in messages:
            self.apply(message)

    # ------------------------------------------------------------------ #
    def get(self, peer_ip: str, prefix: Prefix) -> RibEntry | None:
        return self._routes.get((peer_ip, prefix))

    def routes_for_prefix(self, prefix: Prefix) -> list[RibEntry]:
        """All per-peer routes currently held for a prefix."""
        return [entry for (_, p), entry in self._routes.items() if p == prefix]

    def prefixes(self) -> set[Prefix]:
        """The set of distinct prefixes present in the RIB."""
        return {prefix for (_, prefix) in self._routes}

    def peers(self) -> set[tuple[str, int]]:
        """Distinct (peer IP, peer AS) pairs present in the RIB."""
        return {(entry.peer_ip, entry.peer_as) for entry in self._routes.values()}

    def dump(self, timestamp: float | None = None) -> list[BgpUpdate]:
        """Produce a table dump as a list of announcement messages.

        Entries are emitted in deterministic (peer, prefix) order so that
        dumps are reproducible across runs.
        """
        entries = sorted(
            self._routes.values(), key=lambda e: (e.peer_ip, e.prefix)
        )
        return [entry.to_update(self.collector, timestamp) for entry in entries]


class RouteTable:
    """The Loc-RIB of one simulated AS/router: best route per prefix."""

    def __init__(self, asn: int) -> None:
        self.asn = asn
        self._best: dict[Prefix, PathAttributes] = {}

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._best

    def install(self, prefix: Prefix, attributes: PathAttributes) -> None:
        """Install (or replace) the best route for a prefix."""
        self._best[prefix] = attributes

    def remove(self, prefix: Prefix) -> None:
        self._best.pop(prefix, None)

    def lookup_exact(self, prefix: Prefix) -> PathAttributes | None:
        return self._best.get(prefix)

    def lookup_longest(self, address: str) -> tuple[Prefix, PathAttributes] | None:
        """Longest-prefix-match lookup for a destination address.

        Linear scan over candidate prefixes: route tables in the simulator
        are small (thousands of entries), so this stays fast while keeping
        the implementation obvious.
        """
        best: tuple[Prefix, PathAttributes] | None = None
        for prefix, attributes in self._best.items():
            if prefix.contains_address(address):
                if best is None or prefix.length > best[0].length:
                    best = (prefix, attributes)
        return best

    def prefixes(self) -> set[Prefix]:
        return set(self._best)

    def entries(self) -> Iterator[tuple[Prefix, PathAttributes]]:
        return iter(sorted(self._best.items(), key=lambda item: item[0]))
