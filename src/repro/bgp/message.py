"""BGP message model used throughout the reproduction.

The simulator, the MRT/wire codecs, the BGPStream-like layer and the
inference engine all exchange :class:`BgpUpdate` and :class:`BgpWithdrawal`
objects.  A message is always seen *from the point of view of a collector
peer*: it records which collector and which peer (IP + ASN) observed it, at
what time, plus the BGP payload itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.community import Community, CommunitySet, LargeCommunity
from repro.netutils.prefixes import Prefix

__all__ = ["BgpMessage", "BgpUpdate", "BgpWithdrawal"]


@dataclass(frozen=True)
class BgpMessage:
    """Common fields of announcements and withdrawals.

    Attributes
    ----------
    timestamp:
        Observation time at the collector (seconds).
    collector:
        Name of the collecting platform/collector (``"rrc00"``,
        ``"route-views2"``, ``"pch-ixp-12"``, ``"cdn"`` ...).
    peer_ip / peer_as:
        The BGP peer that exported the route to the collector.  For IXP
        route-server feeds the peer IP lies inside the IXP peering LAN and
        the peer AS is the member that announced the route -- exactly the
        attributes the IXP-detection logic of Section 4.2 inspects.
    prefix:
        The NLRI (or withdrawn) prefix.
    """

    timestamp: float
    collector: str
    peer_ip: str
    peer_as: int
    prefix: Prefix

    @property
    def is_announcement(self) -> bool:
        return isinstance(self, BgpUpdate)

    @property
    def is_withdrawal(self) -> bool:
        return isinstance(self, BgpWithdrawal)


@dataclass(frozen=True)
class BgpUpdate(BgpMessage):
    """A BGP announcement for one prefix, with its path attributes."""

    attributes: PathAttributes = field(default_factory=PathAttributes)

    # ------------------------------------------------------------------ #
    # Convenience accessors used heavily by the inference engine.
    # ------------------------------------------------------------------ #
    @property
    def as_path(self) -> AsPath:
        return self.attributes.as_path

    @property
    def communities(self) -> CommunitySet:
        return self.attributes.communities

    @property
    def next_hop(self) -> str | None:
        return self.attributes.next_hop

    @property
    def origin_as(self) -> int | None:
        return self.attributes.as_path.origin_as

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        timestamp: float,
        collector: str,
        peer_ip: str,
        peer_as: int,
        prefix: str | Prefix,
        as_path: Iterable[int] | AsPath = (),
        communities: Iterable[str | Community | LargeCommunity] | CommunitySet = (),
        next_hop: str | None = None,
    ) -> "BgpUpdate":
        """Terse constructor used by tests, examples and generators."""
        if not isinstance(prefix, Prefix):
            prefix = Prefix.from_string(prefix)
        if not isinstance(as_path, AsPath):
            as_path = AsPath.from_hops(as_path)
        if not isinstance(communities, CommunitySet):
            standard: list[Community] = []
            large: list[LargeCommunity] = []
            for item in communities:
                if isinstance(item, Community):
                    standard.append(item)
                elif isinstance(item, LargeCommunity):
                    large.append(item)
                else:
                    parsed = CommunitySet.from_strings([item])
                    standard.extend(parsed.standard)
                    large.extend(parsed.large)
            communities = CommunitySet(standard, large)
        attributes = PathAttributes(
            as_path=as_path, communities=communities, next_hop=next_hop
        )
        return cls(
            timestamp=timestamp,
            collector=collector,
            peer_ip=peer_ip,
            peer_as=peer_as,
            prefix=prefix,
            attributes=attributes,
        )

    def replace(self, **changes) -> "BgpUpdate":
        """Dataclass-style replace (kept explicit for discoverability)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class BgpWithdrawal(BgpMessage):
    """An explicit BGP withdrawal for one prefix."""

    @classmethod
    def build(
        cls,
        timestamp: float,
        collector: str,
        peer_ip: str,
        peer_as: int,
        prefix: str | Prefix,
    ) -> "BgpWithdrawal":
        if not isinstance(prefix, Prefix):
            prefix = Prefix.from_string(prefix)
        return cls(
            timestamp=timestamp,
            collector=collector,
            peer_ip=peer_ip,
            peer_as=peer_as,
            prefix=prefix,
        )
