"""BGP community attribute values.

The blackholing inference methodology is built entirely around BGP
communities (Section 4): operators tag blackholing announcements with a
*blackhole community* whose value is provider-specific (``ASN:666`` being the
dominant convention), IXPs largely use the RFC 7999 well-known value
``65535:666``, and a handful of networks use the newer large-community
format.  This module models all three community flavours as immutable value
objects plus a :class:`CommunitySet` container with the membership operations
the dictionary and the inference engine need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.netutils.asn import is_public_asn

__all__ = [
    "BLACKHOLE_COMMUNITY",
    "Community",
    "CommunitySet",
    "ExtendedCommunity",
    "GRACEFUL_SHUTDOWN",
    "LargeCommunity",
    "NO_ADVERTISE",
    "NO_EXPORT",
    "NO_EXPORT_SUBCONFED",
    "NO_PEER",
    "parse_community",
]


@dataclass(frozen=True, order=True)
class Community:
    """An RFC 1997 standard community: 16-bit ASN part, 16-bit value part."""

    asn: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.asn <= 0xFFFF:
            raise ValueError(f"community ASN part out of range: {self.asn}")
        if not 0 <= self.value <= 0xFFFF:
            raise ValueError(f"community value part out of range: {self.value}")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_string(cls, text: str) -> "Community":
        """Parse ``"ASN:value"``."""
        asn_text, sep, value_text = text.strip().partition(":")
        if not sep:
            raise ValueError(f"invalid community {text!r}")
        return cls(int(asn_text), int(value_text))

    @classmethod
    def from_int(cls, value: int) -> "Community":
        """Build from the packed 32-bit wire representation."""
        if not 0 <= value <= 0xFFFFFFFF:
            raise ValueError(f"community out of range: {value}")
        return cls(value >> 16, value & 0xFFFF)

    def to_int(self) -> int:
        """Packed 32-bit wire representation."""
        return (self.asn << 16) | self.value

    # ------------------------------------------------------------------ #
    @property
    def is_well_known(self) -> bool:
        """True for communities in the reserved 0xFFFF0000-0xFFFFFFFF block."""
        return self.asn == 0xFFFF

    @property
    def has_public_asn(self) -> bool:
        """True when the upper 16 bits encode a public ASN.

        Communities such as ``0:666`` or ``65535:666`` do *not* identify a
        single provider; the inference engine handles them as ambiguous or
        shared communities (Section 4.1/4.2).
        """
        return is_public_asn(self.asn)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.asn}:{self.value}"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Community({str(self)!r})"


@dataclass(frozen=True, order=True)
class LargeCommunity:
    """An RFC 8092 large community: three 32-bit fields."""

    global_admin: int
    local_data_1: int
    local_data_2: int

    def __post_init__(self) -> None:
        for field in (self.global_admin, self.local_data_1, self.local_data_2):
            if not 0 <= field <= 0xFFFFFFFF:
                raise ValueError(f"large-community field out of range: {field}")

    @classmethod
    def from_string(cls, text: str) -> "LargeCommunity":
        parts = text.strip().split(":")
        if len(parts) != 3:
            raise ValueError(f"invalid large community {text!r}")
        return cls(int(parts[0]), int(parts[1]), int(parts[2]))

    @property
    def has_public_asn(self) -> bool:
        return is_public_asn(self.global_admin)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.global_admin}:{self.local_data_1}:{self.local_data_2}"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LargeCommunity({str(self)!r})"


@dataclass(frozen=True, order=True)
class ExtendedCommunity:
    """An RFC 4360 extended community (type, subtype, 6-byte value).

    Extended communities barely appear in the paper (adoption "so far is
    limited") but the parser must not choke on them, so they are modelled and
    carried through the wire format.
    """

    type_high: int
    type_low: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.type_high <= 0xFF or not 0 <= self.type_low <= 0xFF:
            raise ValueError("extended community type out of range")
        if not 0 <= self.value <= 0xFFFFFFFFFFFF:
            raise ValueError("extended community value out of range")

    def to_bytes(self) -> bytes:
        return bytes([self.type_high, self.type_low]) + self.value.to_bytes(6, "big")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "ExtendedCommunity":
        if len(raw) != 8:
            raise ValueError("extended community must be 8 bytes")
        return cls(raw[0], raw[1], int.from_bytes(raw[2:], "big"))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"ext:{self.type_high:#04x}:{self.type_low:#04x}:{self.value}"


# Well-known communities (RFC 1997 / RFC 7999 / RFC 8326).
NO_EXPORT = Community(0xFFFF, 0xFF01)
NO_ADVERTISE = Community(0xFFFF, 0xFF02)
NO_EXPORT_SUBCONFED = Community(0xFFFF, 0xFF03)
NO_PEER = Community(0xFFFF, 0xFF04)
GRACEFUL_SHUTDOWN = Community(0xFFFF, 0x0000)
#: RFC 7999 BLACKHOLE community (65535:666), adopted by 47 of the 49 IXPs
#: in the paper's dictionary.
BLACKHOLE_COMMUNITY = Community(0xFFFF, 666)


def parse_community(text: str) -> Community | LargeCommunity:
    """Parse either a standard or a large community from its string form."""
    if text.count(":") == 2:
        return LargeCommunity.from_string(text)
    return Community.from_string(text)


class CommunitySet:
    """An immutable-ish, hash-friendly collection of communities.

    A BGP update can carry standard, large, and extended communities at the
    same time; this container keeps them in one place and provides the
    operations the inference engine relies on (membership, intersection with
    the dictionary, string round-trips).
    """

    __slots__ = ("_standard", "_large", "_extended")

    def __init__(
        self,
        standard: Iterable[Community] = (),
        large: Iterable[LargeCommunity] = (),
        extended: Iterable[ExtendedCommunity] = (),
    ) -> None:
        self._standard = frozenset(standard)
        self._large = frozenset(large)
        self._extended = frozenset(extended)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_strings(cls, values: Iterable[str]) -> "CommunitySet":
        """Build a set from ``"a:b"`` and ``"a:b:c"`` strings."""
        standard: list[Community] = []
        large: list[LargeCommunity] = []
        for value in values:
            parsed = parse_community(value)
            if isinstance(parsed, LargeCommunity):
                large.append(parsed)
            else:
                standard.append(parsed)
        return cls(standard, large)

    # ------------------------------------------------------------------ #
    @property
    def standard(self) -> frozenset[Community]:
        return self._standard

    @property
    def large(self) -> frozenset[LargeCommunity]:
        return self._large

    @property
    def extended(self) -> frozenset[ExtendedCommunity]:
        return self._extended

    def __len__(self) -> int:
        return len(self._standard) + len(self._large) + len(self._extended)

    def __iter__(self) -> Iterator[Community | LargeCommunity | ExtendedCommunity]:
        yield from sorted(self._standard)
        yield from sorted(self._large)
        yield from sorted(self._extended)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Community):
            return item in self._standard
        if isinstance(item, LargeCommunity):
            return item in self._large
        if isinstance(item, ExtendedCommunity):
            return item in self._extended
        if isinstance(item, str):
            try:
                return parse_community(item) in self
            except ValueError:
                return False
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunitySet):
            return NotImplemented
        return (
            self._standard == other._standard
            and self._large == other._large
            and self._extended == other._extended
        )

    def __hash__(self) -> int:
        return hash((self._standard, self._large, self._extended))

    def __bool__(self) -> bool:
        return len(self) > 0

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CommunitySet({[str(c) for c in self]})"

    # ------------------------------------------------------------------ #
    def union(self, other: "CommunitySet") -> "CommunitySet":
        return CommunitySet(
            self._standard | other._standard,
            self._large | other._large,
            self._extended | other._extended,
        )

    def with_added(
        self, *items: Community | LargeCommunity | ExtendedCommunity
    ) -> "CommunitySet":
        """Return a new set with the given communities added."""
        standard = set(self._standard)
        large = set(self._large)
        extended = set(self._extended)
        for item in items:
            if isinstance(item, Community):
                standard.add(item)
            elif isinstance(item, LargeCommunity):
                large.add(item)
            elif isinstance(item, ExtendedCommunity):
                extended.add(item)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported community type: {item!r}")
        return CommunitySet(standard, large, extended)

    def intersection_standard(self, others: Iterable[Community]) -> frozenset[Community]:
        """Intersect the standard communities with a candidate collection."""
        return self._standard & frozenset(others)

    def has_no_export(self) -> bool:
        """True when the NO_EXPORT or NO_ADVERTISE well-known tag is present."""
        return NO_EXPORT in self._standard or NO_ADVERTISE in self._standard

    def to_strings(self) -> list[str]:
        """Stable, human-readable string list (standard then large then ext)."""
        return [str(item) for item in self]
