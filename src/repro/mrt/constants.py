"""MRT record type and subtype constants (RFC 6396 / RFC 8050 subset)."""

from __future__ import annotations

import enum

__all__ = ["MrtType", "MrtSubtype", "PEER_TYPE_AS4", "PEER_TYPE_IPV6"]


class MrtType(enum.IntEnum):
    """MRT record types used by the reproduction."""

    TABLE_DUMP_V2 = 13
    BGP4MP = 16
    BGP4MP_ET = 17


class MrtSubtype(enum.IntEnum):
    """MRT record subtypes used by the reproduction."""

    # TABLE_DUMP_V2 subtypes
    PEER_INDEX_TABLE = 1
    RIB_IPV4_UNICAST = 2
    RIB_IPV6_UNICAST = 4

    # BGP4MP subtypes
    BGP4MP_MESSAGE = 1
    BGP4MP_MESSAGE_AS4 = 4


#: Peer-type flag bits in the TABLE_DUMP_V2 PEER_INDEX_TABLE.
PEER_TYPE_IPV6 = 0x01
PEER_TYPE_AS4 = 0x02
