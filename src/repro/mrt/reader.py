"""MRT binary reader.

Parses the records produced by :mod:`repro.mrt.writer` (and, for the
supported subset, records produced by real collectors): BGP4MP /
BGP4MP_ET message records and TABLE_DUMP_V2 RIB snapshots.  The high-level
:func:`read_messages` generator converts both flavours back into
:class:`~repro.bgp.message.BgpUpdate` / :class:`BgpWithdrawal` objects, which
is what the BGPStream-like layer feeds to the inference engine.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator

from repro.bgp.attributes import PathAttributes
from repro.bgp.message import BgpMessage, BgpUpdate, BgpWithdrawal
from repro.bgp.wire import BGP_HEADER_MARKER, decode_update
from repro.mrt.constants import (
    PEER_TYPE_AS4,
    PEER_TYPE_IPV6,
    MrtSubtype,
    MrtType,
)
from repro.netutils.prefixes import Prefix, int_to_addr

__all__ = ["MrtReader", "MrtRecord", "read_messages", "read_records"]


class MrtError(ValueError):
    """Raised when an MRT byte stream cannot be parsed."""


@dataclass(frozen=True)
class MrtRecord:
    """One raw MRT record (header fields + payload bytes).

    ``payload`` is a zero-copy ``memoryview`` into the source buffer when
    the record came from :func:`read_records`; the decode paths treat it as
    a read-only byte sequence either way.
    """

    timestamp: float
    mrt_type: int
    subtype: int
    payload: bytes | memoryview


def read_records(data: bytes | memoryview) -> Iterator[MrtRecord]:
    """Iterate the raw MRT records in a byte buffer, copy-free.

    The hot scan never slices record bytes out of ``data``: headers are
    read in place with ``struct.unpack_from`` and payloads are handed out
    as ``memoryview`` windows, so a multi-gigabyte archive is walked
    without duplicating a single record.
    """
    view = data if type(data) is memoryview else memoryview(data)
    size = len(view)
    unpack_from = struct.unpack_from
    offset = 0
    while offset < size:
        if offset + 12 > size:
            raise MrtError("truncated MRT header")
        seconds, mrt_type, subtype, length = unpack_from("!IHHI", view, offset)
        offset += 12
        end = offset + length
        if end > size:
            raise MrtError("truncated MRT payload")
        payload = view[offset:end]
        offset = end
        timestamp = float(seconds)
        if mrt_type == MrtType.BGP4MP_ET:
            if length < 4:
                raise MrtError("truncated BGP4MP_ET microsecond field")
            timestamp += unpack_from("!I", payload)[0] / 1_000_000
            payload = payload[4:]
        yield MrtRecord(timestamp, mrt_type, subtype, payload)


def _decode_ip(raw: bytes) -> str:
    if len(raw) == 4:
        return int_to_addr(int.from_bytes(raw, "big"), 4)
    if len(raw) == 16:
        return int_to_addr(int.from_bytes(raw, "big"), 6)
    raise MrtError(f"unexpected IP length {len(raw)}")


class MrtReader:
    """Stateful reader converting MRT records into BGP message objects.

    TABLE_DUMP_V2 requires state (the PEER_INDEX_TABLE maps peer indices to
    peer IP/AS pairs), hence the class; BGP4MP records are stateless.
    """

    def __init__(self, collector: str = "mrt") -> None:
        self.collector = collector
        self._peer_table: list[tuple[str, int]] = []

    # ------------------------------------------------------------------ #
    def messages(self, data: bytes) -> Iterator[BgpMessage]:
        """Yield BGP messages from an MRT byte buffer."""
        for record in read_records(data):
            yield from self.messages_from_record(record)

    def messages_from_record(self, record: MrtRecord) -> Iterator[BgpMessage]:
        if record.mrt_type in (MrtType.BGP4MP, MrtType.BGP4MP_ET):
            yield from self._decode_bgp4mp(record)
        elif record.mrt_type == MrtType.TABLE_DUMP_V2:
            if record.subtype == MrtSubtype.PEER_INDEX_TABLE:
                self._load_peer_index(record.payload)
            elif record.subtype in (
                MrtSubtype.RIB_IPV4_UNICAST,
                MrtSubtype.RIB_IPV6_UNICAST,
            ):
                family = 4 if record.subtype == MrtSubtype.RIB_IPV4_UNICAST else 6
                yield from self._decode_rib_entry(record, family)
        # Unknown types are skipped, mirroring tolerant MRT tooling.

    # ------------------------------------------------------------------ #
    def row_specs(
        self,
        data: bytes | memoryview,
        project: str,
        rib: bool = False,
        prefix_filter=None,
    ):
        """Decode an MRT buffer straight into batch row specs.

        The columnar twin of :meth:`messages` + elem conversion: timestamp,
        prefix, peer and community fields are written directly out of the
        decoded records, and the ``StreamElem`` (and the intermediate
        ``BgpUpdate`` / ``BgpWithdrawal``) is never constructed unless a
        consumer fires the spec's row thunk.  ``rib=True`` types
        announcement-like rows as RIB entries, matching ``dump_elems``.
        The spec tuples yielded equal :data:`repro.stream.batch.RowSpec`.
        """
        # Imported lazily: repro.stream.source imports this module at top
        # level, so a module-level import here would be circular.
        from repro.bgp.community import CommunitySet
        from repro.stream.batch import TYPE_ANNOUNCEMENT, TYPE_RIB, TYPE_WITHDRAWAL
        from repro.stream.record import ElemType, StreamElem

        announce_code = TYPE_RIB if rib else TYPE_ANNOUNCEMENT
        announce_type = ElemType.RIB if rib else ElemType.ANNOUNCEMENT
        withdrawal = ElemType.WITHDRAWAL
        empty_communities = CommunitySet()
        collector = self.collector
        for record in read_records(data):
            if record.mrt_type in (MrtType.BGP4MP, MrtType.BGP4MP_ET):
                header = self._decode_bgp4mp_header(record)
                if header is None:
                    continue
                peer_ip, peer_as, decoded = header
                timestamp = record.timestamp
                for prefix in decoded.withdrawn:
                    if prefix_filter is not None and not prefix_filter(prefix):
                        continue
                    yield (
                        timestamp,
                        TYPE_WITHDRAWAL,
                        project,
                        collector,
                        peer_ip,
                        prefix,
                        empty_communities,
                        lambda prefix=prefix, timestamp=timestamp, peer_ip=peer_ip, peer_as=peer_as: StreamElem(
                            timestamp=timestamp,
                            elem_type=withdrawal,
                            project=project,
                            collector=collector,
                            peer_ip=peer_ip,
                            peer_as=peer_as,
                            prefix=prefix,
                        ),
                    )
                attributes = decoded.attributes
                for prefix in decoded.announced:
                    if prefix_filter is not None and not prefix_filter(prefix):
                        continue
                    yield (
                        timestamp,
                        announce_code,
                        project,
                        collector,
                        peer_ip,
                        prefix,
                        attributes.communities,
                        lambda prefix=prefix, timestamp=timestamp, peer_ip=peer_ip, peer_as=peer_as, attributes=attributes: StreamElem(
                            timestamp=timestamp,
                            elem_type=announce_type,
                            project=project,
                            collector=collector,
                            peer_ip=peer_ip,
                            peer_as=peer_as,
                            prefix=prefix,
                            as_path=attributes.as_path,
                            next_hop=attributes.next_hop,
                            communities=attributes.communities,
                        ),
                    )
            elif record.mrt_type == MrtType.TABLE_DUMP_V2:
                if record.subtype == MrtSubtype.PEER_INDEX_TABLE:
                    self._load_peer_index(record.payload)
                elif record.subtype in (
                    MrtSubtype.RIB_IPV4_UNICAST,
                    MrtSubtype.RIB_IPV6_UNICAST,
                ):
                    family = (
                        4 if record.subtype == MrtSubtype.RIB_IPV4_UNICAST else 6
                    )
                    for entry in self._rib_entries(record, family):
                        originated, peer_ip, peer_as, prefix, attributes = entry
                        if prefix_filter is not None and not prefix_filter(prefix):
                            continue
                        yield (
                            originated,
                            announce_code,
                            project,
                            collector,
                            peer_ip,
                            prefix,
                            attributes.communities,
                            lambda originated=originated, peer_ip=peer_ip, peer_as=peer_as, prefix=prefix, attributes=attributes: StreamElem(
                                timestamp=originated,
                                elem_type=announce_type,
                                project=project,
                                collector=collector,
                                peer_ip=peer_ip,
                                peer_as=peer_as,
                                prefix=prefix,
                                as_path=attributes.as_path,
                                next_hop=attributes.next_hop,
                                communities=attributes.communities,
                            ),
                        )

    # ------------------------------------------------------------------ #
    def _decode_bgp4mp_header(self, record: MrtRecord):
        """Parse a BGP4MP(_ET) record down to ``(peer_ip, peer_as, update)``.

        Returns ``None`` for subtypes this reader does not handle.  All
        header reads are in-place ``unpack_from`` calls; the BGP message is
        decoded from a ``memoryview`` window of the payload.
        """
        payload = record.payload
        if record.subtype == MrtSubtype.BGP4MP_MESSAGE_AS4:
            if len(payload) < 12:
                raise MrtError("truncated BGP4MP_MESSAGE_AS4 header")
            peer_as, _local_as, _ifindex, afi = struct.unpack_from("!IIHH", payload)
            offset = 12
        elif record.subtype == MrtSubtype.BGP4MP_MESSAGE:
            if len(payload) < 8:
                raise MrtError("truncated BGP4MP_MESSAGE header")
            peer_as, _local_as, _ifindex, afi = struct.unpack_from("!HHHH", payload)
            offset = 8
        else:
            return None
        addr_len = 4 if afi == 1 else 16
        peer_ip = _decode_ip(payload[offset : offset + addr_len])
        offset += 2 * addr_len  # skip local IP too
        bgp_bytes = payload[offset:]
        # memoryview has no startswith; slice-compare checks the same bytes
        # (a short tail yields a short slice, which simply compares unequal).
        if bgp_bytes[:16] != BGP_HEADER_MARKER:
            raise MrtError("BGP4MP payload does not contain a BGP message")
        return peer_ip, peer_as, decode_update(bgp_bytes)

    def _decode_bgp4mp(self, record: MrtRecord) -> Iterator[BgpMessage]:
        header = self._decode_bgp4mp_header(record)
        if header is None:
            return
        peer_ip, peer_as, decoded = header
        for prefix in decoded.withdrawn:
            yield BgpWithdrawal(
                timestamp=record.timestamp,
                collector=self.collector,
                peer_ip=peer_ip,
                peer_as=peer_as,
                prefix=prefix,
            )
        for prefix in decoded.announced:
            yield BgpUpdate(
                timestamp=record.timestamp,
                collector=self.collector,
                peer_ip=peer_ip,
                peer_as=peer_as,
                prefix=prefix,
                attributes=decoded.attributes,
            )

    def _load_peer_index(self, payload: bytes | memoryview) -> None:
        unpack_from = struct.unpack_from
        offset = 4  # skip collector BGP ID
        name_len = unpack_from("!H", payload, offset)[0]
        offset += 2 + name_len
        peer_count = unpack_from("!H", payload, offset)[0]
        offset += 2
        peers: list[tuple[str, int]] = []
        for _ in range(peer_count):
            peer_type = payload[offset]
            offset += 1 + 4  # type + peer BGP ID
            addr_len = 16 if peer_type & PEER_TYPE_IPV6 else 4
            peer_ip = _decode_ip(payload[offset : offset + addr_len])
            offset += addr_len
            if peer_type & PEER_TYPE_AS4:
                peer_as = unpack_from("!I", payload, offset)[0]
                offset += 4
            else:
                peer_as = unpack_from("!H", payload, offset)[0]
                offset += 2
            peers.append((peer_ip, peer_as))
        self._peer_table = peers

    def _rib_entries(self, record: MrtRecord, family: int):
        """Parse one RIB record into ``(originated, peer_ip, peer_as,
        prefix, attributes)`` tuples, in place over the payload."""
        if not self._peer_table:
            raise MrtError("RIB entry before PEER_INDEX_TABLE")
        payload = record.payload
        unpack_from = struct.unpack_from
        offset = 4  # sequence number
        length = payload[offset]
        offset += 1
        nbytes = (length + 7) // 8
        total_bytes = 4 if family == 4 else 16
        # Left-align the prefix bits arithmetically instead of padding a
        # byte copy (memoryview payloads do not concatenate).
        network = int.from_bytes(payload[offset : offset + nbytes], "big") << (
            8 * (total_bytes - nbytes)
        )
        prefix = Prefix.make(family, network, length)
        offset += nbytes
        entry_count = unpack_from("!H", payload, offset)[0]
        offset += 2
        for _ in range(entry_count):
            peer_index, originated, attrs_len = unpack_from("!HIH", payload, offset)
            offset += 8
            attrs_raw = payload[offset : offset + attrs_len]
            offset += attrs_len
            attributes = _decode_bare_attributes(attrs_raw)
            peer_ip, peer_as = self._peer_table[peer_index]
            yield float(originated), peer_ip, peer_as, prefix, attributes

    def _decode_rib_entry(self, record: MrtRecord, family: int) -> Iterator[BgpUpdate]:
        for originated, peer_ip, peer_as, prefix, attributes in self._rib_entries(
            record, family
        ):
            yield BgpUpdate(
                timestamp=originated,
                collector=self.collector,
                peer_ip=peer_ip,
                peer_as=peer_as,
                prefix=prefix,
                attributes=attributes,
            )


def _decode_bare_attributes(attrs_raw: bytes | memoryview) -> PathAttributes:
    """Decode a bare path-attribute blob by wrapping it into a fake UPDATE."""
    body = (
        struct.pack("!H", 0)  # no withdrawn routes
        + struct.pack("!H", len(attrs_raw))
        + bytes(attrs_raw)
    )
    total = 19 + len(body)
    message = BGP_HEADER_MARKER + struct.pack("!HB", total, 2) + body
    return decode_update(message).attributes


def read_messages(data: bytes, collector: str = "mrt") -> Iterator[BgpMessage]:
    """Convenience wrapper: iterate all BGP messages in an MRT buffer."""
    reader = MrtReader(collector=collector)
    yield from reader.messages(data)
