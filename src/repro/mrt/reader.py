"""MRT binary reader.

Parses the records produced by :mod:`repro.mrt.writer` (and, for the
supported subset, records produced by real collectors): BGP4MP /
BGP4MP_ET message records and TABLE_DUMP_V2 RIB snapshots.  The high-level
:func:`read_messages` generator converts both flavours back into
:class:`~repro.bgp.message.BgpUpdate` / :class:`BgpWithdrawal` objects, which
is what the BGPStream-like layer feeds to the inference engine.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator

from repro.bgp.attributes import PathAttributes
from repro.bgp.message import BgpMessage, BgpUpdate, BgpWithdrawal
from repro.bgp.wire import BGP_HEADER_MARKER, decode_update
from repro.mrt.constants import (
    PEER_TYPE_AS4,
    PEER_TYPE_IPV6,
    MrtSubtype,
    MrtType,
)
from repro.netutils.prefixes import Prefix, int_to_addr

__all__ = ["MrtReader", "MrtRecord", "read_messages", "read_records"]


class MrtError(ValueError):
    """Raised when an MRT byte stream cannot be parsed."""


@dataclass(frozen=True)
class MrtRecord:
    """One raw MRT record (header fields + payload bytes)."""

    timestamp: float
    mrt_type: int
    subtype: int
    payload: bytes


def read_records(data: bytes) -> Iterator[MrtRecord]:
    """Iterate the raw MRT records in a byte buffer."""
    offset = 0
    while offset < len(data):
        if offset + 12 > len(data):
            raise MrtError("truncated MRT header")
        seconds, mrt_type, subtype, length = struct.unpack(
            "!IHHI", data[offset : offset + 12]
        )
        offset += 12
        payload = data[offset : offset + length]
        if len(payload) != length:
            raise MrtError("truncated MRT payload")
        offset += length
        timestamp = float(seconds)
        if mrt_type == MrtType.BGP4MP_ET:
            if len(payload) < 4:
                raise MrtError("truncated BGP4MP_ET microsecond field")
            microseconds = struct.unpack("!I", payload[:4])[0]
            timestamp += microseconds / 1_000_000
            payload = payload[4:]
        yield MrtRecord(timestamp, mrt_type, subtype, payload)


def _decode_ip(raw: bytes) -> str:
    if len(raw) == 4:
        return int_to_addr(int.from_bytes(raw, "big"), 4)
    if len(raw) == 16:
        return int_to_addr(int.from_bytes(raw, "big"), 6)
    raise MrtError(f"unexpected IP length {len(raw)}")


class MrtReader:
    """Stateful reader converting MRT records into BGP message objects.

    TABLE_DUMP_V2 requires state (the PEER_INDEX_TABLE maps peer indices to
    peer IP/AS pairs), hence the class; BGP4MP records are stateless.
    """

    def __init__(self, collector: str = "mrt") -> None:
        self.collector = collector
        self._peer_table: list[tuple[str, int]] = []

    # ------------------------------------------------------------------ #
    def messages(self, data: bytes) -> Iterator[BgpMessage]:
        """Yield BGP messages from an MRT byte buffer."""
        for record in read_records(data):
            yield from self.messages_from_record(record)

    def messages_from_record(self, record: MrtRecord) -> Iterator[BgpMessage]:
        if record.mrt_type in (MrtType.BGP4MP, MrtType.BGP4MP_ET):
            yield from self._decode_bgp4mp(record)
        elif record.mrt_type == MrtType.TABLE_DUMP_V2:
            if record.subtype == MrtSubtype.PEER_INDEX_TABLE:
                self._load_peer_index(record.payload)
            elif record.subtype in (
                MrtSubtype.RIB_IPV4_UNICAST,
                MrtSubtype.RIB_IPV6_UNICAST,
            ):
                family = 4 if record.subtype == MrtSubtype.RIB_IPV4_UNICAST else 6
                yield from self._decode_rib_entry(record, family)
        # Unknown types are skipped, mirroring tolerant MRT tooling.

    # ------------------------------------------------------------------ #
    def _decode_bgp4mp(self, record: MrtRecord) -> Iterator[BgpMessage]:
        payload = record.payload
        if record.subtype == MrtSubtype.BGP4MP_MESSAGE_AS4:
            if len(payload) < 12:
                raise MrtError("truncated BGP4MP_MESSAGE_AS4 header")
            peer_as, _local_as, _ifindex, afi = struct.unpack("!IIHH", payload[:12])
            offset = 12
        elif record.subtype == MrtSubtype.BGP4MP_MESSAGE:
            if len(payload) < 8:
                raise MrtError("truncated BGP4MP_MESSAGE header")
            peer_as, _local_as, _ifindex, afi = struct.unpack("!HHHH", payload[:8])
            offset = 8
        else:
            return
        addr_len = 4 if afi == 1 else 16
        peer_ip = _decode_ip(payload[offset : offset + addr_len])
        offset += 2 * addr_len  # skip local IP too
        bgp_bytes = payload[offset:]
        if not bgp_bytes.startswith(BGP_HEADER_MARKER):
            raise MrtError("BGP4MP payload does not contain a BGP message")
        decoded = decode_update(bgp_bytes)
        for prefix in decoded.withdrawn:
            yield BgpWithdrawal(
                timestamp=record.timestamp,
                collector=self.collector,
                peer_ip=peer_ip,
                peer_as=peer_as,
                prefix=prefix,
            )
        for prefix in decoded.announced:
            yield BgpUpdate(
                timestamp=record.timestamp,
                collector=self.collector,
                peer_ip=peer_ip,
                peer_as=peer_as,
                prefix=prefix,
                attributes=decoded.attributes,
            )

    def _load_peer_index(self, payload: bytes) -> None:
        offset = 4  # skip collector BGP ID
        name_len = struct.unpack("!H", payload[offset : offset + 2])[0]
        offset += 2 + name_len
        peer_count = struct.unpack("!H", payload[offset : offset + 2])[0]
        offset += 2
        peers: list[tuple[str, int]] = []
        for _ in range(peer_count):
            peer_type = payload[offset]
            offset += 1 + 4  # type + peer BGP ID
            addr_len = 16 if peer_type & PEER_TYPE_IPV6 else 4
            peer_ip = _decode_ip(payload[offset : offset + addr_len])
            offset += addr_len
            if peer_type & PEER_TYPE_AS4:
                peer_as = struct.unpack("!I", payload[offset : offset + 4])[0]
                offset += 4
            else:
                peer_as = struct.unpack("!H", payload[offset : offset + 2])[0]
                offset += 2
            peers.append((peer_ip, peer_as))
        self._peer_table = peers

    def _decode_rib_entry(self, record: MrtRecord, family: int) -> Iterator[BgpUpdate]:
        if not self._peer_table:
            raise MrtError("RIB entry before PEER_INDEX_TABLE")
        payload = record.payload
        offset = 4  # sequence number
        length = payload[offset]
        offset += 1
        nbytes = (length + 7) // 8
        total_bytes = 4 if family == 4 else 16
        raw = payload[offset : offset + nbytes] + b"\x00" * (total_bytes - nbytes)
        prefix = Prefix.make(family, int.from_bytes(raw, "big"), length)
        offset += nbytes
        entry_count = struct.unpack("!H", payload[offset : offset + 2])[0]
        offset += 2
        for _ in range(entry_count):
            peer_index, originated, attrs_len = struct.unpack(
                "!HIH", payload[offset : offset + 8]
            )
            offset += 8
            attrs_raw = payload[offset : offset + attrs_len]
            offset += attrs_len
            attributes = _decode_bare_attributes(attrs_raw)
            peer_ip, peer_as = self._peer_table[peer_index]
            yield BgpUpdate(
                timestamp=float(originated),
                collector=self.collector,
                peer_ip=peer_ip,
                peer_as=peer_as,
                prefix=prefix,
                attributes=attributes,
            )


def _decode_bare_attributes(attrs_raw: bytes) -> PathAttributes:
    """Decode a bare path-attribute blob by wrapping it into a fake UPDATE."""
    body = (
        struct.pack("!H", 0)  # no withdrawn routes
        + struct.pack("!H", len(attrs_raw))
        + attrs_raw
    )
    total = 19 + len(body)
    message = BGP_HEADER_MARKER + struct.pack("!HB", total, 2) + body
    return decode_update(message).attributes


def read_messages(data: bytes, collector: str = "mrt") -> Iterator[BgpMessage]:
    """Convenience wrapper: iterate all BGP messages in an MRT buffer."""
    reader = MrtReader(collector=collector)
    yield from reader.messages(data)
