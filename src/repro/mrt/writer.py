"""MRT binary writer.

Serialises simulated collector data into MRT bytes:

* :func:`write_updates` -- a stream of :class:`~repro.bgp.message.BgpUpdate`
  / :class:`~repro.bgp.message.BgpWithdrawal` objects into BGP4MP_ET
  (microsecond-timestamped) records carrying real BGP UPDATE messages.
* :func:`write_rib` -- a collector :class:`~repro.bgp.rib.Rib` into a
  TABLE_DUMP_V2 snapshot (PEER_INDEX_TABLE followed by RIB_IPV4_UNICAST /
  RIB_IPV6_UNICAST entries).
"""

from __future__ import annotations

import struct
from typing import Iterable

from repro.bgp.message import BgpMessage, BgpUpdate, BgpWithdrawal
from repro.bgp.rib import Rib
from repro.bgp.wire import encode_update
from repro.mrt.constants import (
    PEER_TYPE_AS4,
    PEER_TYPE_IPV6,
    MrtSubtype,
    MrtType,
)
from repro.netutils.prefixes import addr_to_int

__all__ = ["MrtWriter", "write_rib", "write_updates"]

_AFI_IPV4 = 1
_AFI_IPV6 = 2


def _encode_header(
    timestamp: float, mrt_type: int, subtype: int, payload: bytes, extended: bool
) -> bytes:
    """Encode the MRT common header (plus microseconds for _ET types)."""
    seconds = int(timestamp)
    if extended:
        microseconds = int(round((timestamp - seconds) * 1_000_000))
        body = struct.pack("!I", microseconds) + payload
    else:
        body = payload
    return struct.pack("!IHHI", seconds, mrt_type, subtype, len(body)) + body


def _encode_ip(address: str, family: int) -> bytes:
    value, fam = addr_to_int(address)
    if fam != family:
        raise ValueError(f"address {address} is not IPv{family}")
    return value.to_bytes(4 if family == 4 else 16, "big")


class MrtWriter:
    """Incremental MRT writer accumulating records into a byte buffer."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []

    # ------------------------------------------------------------------ #
    def add_bgp4mp_message(self, message: BgpMessage, local_as: int = 0) -> None:
        """Append one BGP4MP_ET record for an update or withdrawal."""
        family = 4 if ":" not in message.peer_ip else 6
        afi = _AFI_IPV4 if family == 4 else _AFI_IPV6
        local_ip = "0.0.0.0" if family == 4 else "::"

        if isinstance(message, BgpUpdate):
            bgp_bytes = encode_update(
                announced=[message.prefix], attributes=message.attributes
            )
        elif isinstance(message, BgpWithdrawal):
            bgp_bytes = encode_update(withdrawn=[message.prefix])
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported message type {type(message)!r}")

        payload = (
            struct.pack("!IIHH", message.peer_as, local_as, 0, afi)
            + _encode_ip(message.peer_ip, family)
            + _encode_ip(local_ip, family)
            + bgp_bytes
        )
        self._chunks.append(
            _encode_header(
                message.timestamp,
                MrtType.BGP4MP_ET,
                MrtSubtype.BGP4MP_MESSAGE_AS4,
                payload,
                extended=True,
            )
        )

    def add_peer_index_table(
        self, collector_id: str, peers: list[tuple[str, int]], view_name: str = ""
    ) -> None:
        """Append the PEER_INDEX_TABLE record for a TABLE_DUMP_V2 snapshot."""
        collector_bgp_id, fam = addr_to_int(collector_id)
        if fam != 4:
            raise ValueError("collector BGP ID must be an IPv4 address")
        name_bytes = view_name.encode()
        payload = struct.pack("!I", collector_bgp_id)
        payload += struct.pack("!H", len(name_bytes)) + name_bytes
        payload += struct.pack("!H", len(peers))
        for peer_ip, peer_as in peers:
            family = 4 if ":" not in peer_ip else 6
            peer_type = PEER_TYPE_AS4 | (PEER_TYPE_IPV6 if family == 6 else 0)
            payload += struct.pack("!B", peer_type)
            payload += b"\x00" * 4  # peer BGP ID (unused in the simulator)
            payload += _encode_ip(peer_ip, family)
            payload += struct.pack("!I", peer_as)
        self._chunks.append(
            _encode_header(
                0.0,
                MrtType.TABLE_DUMP_V2,
                MrtSubtype.PEER_INDEX_TABLE,
                payload,
                extended=False,
            )
        )

    def add_rib_entry(
        self,
        sequence: int,
        prefix_updates: list[tuple[int, BgpUpdate]],
        timestamp: float = 0.0,
    ) -> None:
        """Append one RIB_IPVx_UNICAST record.

        ``prefix_updates`` pairs each contributing peer's index (into the
        PEER_INDEX_TABLE) with the announcement holding its attributes; all
        entries must share the same prefix.
        """
        if not prefix_updates:
            raise ValueError("RIB entry needs at least one route")
        prefix = prefix_updates[0][1].prefix
        subtype = (
            MrtSubtype.RIB_IPV4_UNICAST
            if prefix.family == 4
            else MrtSubtype.RIB_IPV6_UNICAST
        )
        nbytes = (prefix.length + 7) // 8
        prefix_bytes = bytes([prefix.length]) + prefix.network.to_bytes(
            prefix.bits // 8, "big"
        )[:nbytes]
        payload = struct.pack("!I", sequence) + prefix_bytes
        payload += struct.pack("!H", len(prefix_updates))
        for peer_index, update in prefix_updates:
            if update.prefix != prefix:
                raise ValueError("all RIB entry routes must share one prefix")
            # TABLE_DUMP_V2 stores bare path attributes (no BGP header); we
            # reuse the UPDATE encoder and strip header + empty NLRI fields.
            encoded = encode_update(announced=[update.prefix], attributes=update.attributes)
            # Skip 19-byte header + 2-byte withdrawn length (0) to reach the
            # attributes length field.
            attrs_len = struct.unpack("!H", encoded[21:23])[0]
            attrs = encoded[23 : 23 + attrs_len]
            payload += struct.pack(
                "!HIH", peer_index, int(update.timestamp), len(attrs)
            )
            payload += attrs
        self._chunks.append(
            _encode_header(
                timestamp, MrtType.TABLE_DUMP_V2, subtype, payload, extended=False
            )
        )

    # ------------------------------------------------------------------ #
    def getvalue(self) -> bytes:
        """The accumulated MRT byte stream."""
        return b"".join(self._chunks)

    def write_to(self, path: str) -> None:
        """Write the accumulated records to a file."""
        with open(path, "wb") as handle:
            handle.write(self.getvalue())


def write_updates(messages: Iterable[BgpMessage]) -> bytes:
    """Serialise a message stream into BGP4MP_ET MRT bytes."""
    writer = MrtWriter()
    for message in messages:
        writer.add_bgp4mp_message(message)
    return writer.getvalue()


def write_rib(rib: Rib, timestamp: float = 0.0, collector_id: str = "192.0.2.1") -> bytes:
    """Serialise a collector RIB into a TABLE_DUMP_V2 MRT snapshot."""
    writer = MrtWriter()
    peers = sorted(rib.peers())
    peer_index = {peer: index for index, peer in enumerate(peers)}
    writer.add_peer_index_table(collector_id, peers)

    by_prefix: dict = {}
    for entry in rib:
        by_prefix.setdefault(entry.prefix, []).append(entry)
    for sequence, prefix in enumerate(sorted(by_prefix)):
        entries = by_prefix[prefix]
        prefix_updates = [
            (
                peer_index[(entry.peer_ip, entry.peer_as)],
                entry.to_update(rib.collector),
            )
            for entry in sorted(entries, key=lambda e: (e.peer_ip, e.peer_as))
        ]
        writer.add_rib_entry(sequence, prefix_updates, timestamp=timestamp)
    return writer.getvalue()
