"""MRT (Multi-Threaded Routing Toolkit, RFC 6396) format substrate.

Route collector archives (RIPE RIS, RouteViews, PCH) publish their data as
MRT files: ``bview``/RIB snapshots encoded as TABLE_DUMP_V2 records and
``updates`` files encoded as BGP4MP records wrapping raw BGP messages.  This
package provides a from-scratch binary writer and reader for both record
families so that the simulated collector feeds can be archived to and
re-parsed from genuine MRT bytes.
"""

from repro.mrt.constants import MrtSubtype, MrtType
from repro.mrt.reader import MrtReader, read_messages, read_records
from repro.mrt.writer import MrtWriter, write_rib, write_updates

__all__ = [
    "MrtReader",
    "MrtSubtype",
    "MrtType",
    "MrtWriter",
    "read_messages",
    "read_records",
    "write_rib",
    "write_updates",
]
