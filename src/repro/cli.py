"""Command-line interface.

``python -m repro`` runs the full study on a simulated scenario and prints
the requested tables/summaries, so the pipeline can be exercised without
writing any code::

    python -m repro study --scale small --seed 23 --report tables
    python -m repro study --scale small --report summary --format json
    python -m repro study --scale bench --workers 4    # shard-parallel inference
    python -m repro simulate --scale small     # scenario statistics only
    python -m repro sweep --scale small --seeds 2 --ablate baseline \\
        --ablate no-bundling                   # shared-artifact campaign
    python -m repro report --list              # enumerate the analysis registry
    python -m repro report fig2 table1 --format json

The ``--scale`` presets map to the scenario configurations used by the tests
(``small``), the benchmark harness (``bench``), and the paper's analysis and
longitudinal windows (``analysis``, ``longitudinal``); larger scales take
correspondingly longer.  ``sweep`` expands a scenario matrix (seeds x
ablations x scales) through one :class:`~repro.exec.campaign.StudyCampaign`:
grid-invariant artifacts are computed once, and cells sharing a stream run
their inference engines fused -- one stream iteration feeding every cell.
Its ``--report`` flag tabulates registered analyses across all cells *and*
prunes the schedule to the stages those analyses need, so
``sweep --report fig2`` never runs inference at all.
``report`` resolves named figure/table artifacts lazily -- each analysis
builds only the pipeline stages its registry entry declares, so e.g.
``repro report fig2`` never pays for the inference pass.
"""

from __future__ import annotations

import argparse
import json
import sys
from importlib import metadata
from typing import Callable, Sequence

from repro.analysis import fig4, registry
from repro.analysis.pipeline import StudyPipeline, StudyResult
from repro.exec.campaign import ABLATIONS, ScenarioMatrix, StudyCampaign
from repro.exec.plan import ExecutionPlan
from repro.workload.config import SCALE_PRESETS, ScenarioConfig
from repro.workload.simulation import ScenarioDataset, ScenarioSimulator

__all__ = ["main"]


def _status_out(args: argparse.Namespace, out: Callable[[str], None]) -> Callable[[str], None]:
    """Where progress lines go: swallowed when the payload must be pure JSON."""
    if getattr(args, "format", "text") == "json":
        return lambda _line: None
    return out


def _package_version() -> str:
    """The version of the package actually executing.

    ``repro.__version__`` is the source of truth -- the distribution
    metadata is generated from it at build time -- and, unlike the
    installed distribution's version, always matches the code running
    (e.g. a ``PYTHONPATH=src`` tree next to an older install).
    """
    try:
        from repro import __version__

        return __version__
    except ImportError:  # pragma: no cover - attribute removed
        return metadata.version("repro-bgp-blackholing")


def _simulate(args: argparse.Namespace, out: Callable[[str], None]) -> ScenarioDataset:
    config = ScenarioConfig.for_scale(args.scale, seed=args.seed)
    out(f"Simulating scenario '{args.scale}' (seed {args.seed}) ...")
    dataset = ScenarioSimulator(config).generate()
    out(
        f"  ASes: {len(dataset.topology.ases)}, IXPs: {len(dataset.topology.ixps)}, "
        f"blackholing services: {len(dataset.topology.blackholing_services)}"
    )
    out(
        f"  attacks: {len(dataset.timeline)}, blackholing requests: {len(dataset.requests)}, "
        f"BGP update messages: {dataset.message_count}"
    )
    out(
        f"  window: {dataset.config.start_date} .. {dataset.config.end_date} "
        f"({dataset.config.duration_days:.0f} days)"
    )
    return dataset


def _cmd_simulate(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    _simulate(args, out)
    return 0


def _cmd_study(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    # Validate the execution layout before paying for the simulation; the
    # same plan instance then drives the pipeline.
    try:
        plan = ExecutionPlan(workers=args.workers, batch_size=args.batch_size)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    status = _status_out(args, out)
    dataset = _simulate(args, status)
    pipeline = StudyPipeline(dataset, plan=plan)
    if args.workers > 1:
        status(
            f"Running the dictionary + inference pipeline "
            f"({args.workers} shards, {pipeline.plan.resolved_backend()} backend) ..."
        )
    else:
        status("Running the dictionary + inference pipeline ...")
    result = pipeline.run()

    if args.format == "json":
        names = {
            "summary": ("table3_summary",),
            "tables": ("table1", "table2", "table3", "table4"),
            "all": ("table3_summary", "table1", "table2", "table3", "table4"),
        }[args.report]
        out(
            json.dumps(
                {
                    "command": "study",
                    "scale": args.scale,
                    "seed": args.seed,
                    "analyses": {
                        name: res.to_dict()
                        for name, res in result.analyses(names).items()
                    },
                },
                indent=2,
            )
        )
        return 0

    report = result.report
    if args.report in ("summary", "all"):
        out("")
        out("Study summary")
        out(f"  documented communities: {result.dictionary.community_count()} "
            f"({result.dictionary.provider_count()} providers)")
        out(f"  inferred communities:   {result.inferred_dictionary.community_count()}")
        out(f"  blackholing providers:  {len(report.providers())}")
        out(f"  blackholing users:      {len(report.users())}")
        out(f"  blackholed prefixes:    {len(report.ipv4_prefixes())} IPv4 "
            f"({report.host_route_fraction():.1%} /32s)")
        out(f"  bundling share:         {report.bundled_fraction():.1%}")
        daily = fig4.compute_daily_activity(result)
        if daily:
            peak = max(daily, key=lambda d: d.prefixes)
            out(f"  peak daily prefixes:    {peak.prefixes}")

    if args.report in ("tables", "all"):
        for name in ("table1", "table2", "table3", "table4"):
            out("")
            out(result.analysis(name).render())
    return 0


def _cmd_report(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    if args.list:
        if args.format == "json":
            out(
                json.dumps(
                    {
                        "command": "report",
                        "analyses": [
                            {
                                "name": spec.name,
                                "kind": spec.kind,
                                "needs": list(spec.needs),
                                "title": spec.title,
                            }
                            for spec in registry.all_analyses()
                        ],
                    },
                    indent=2,
                )
            )
            return 0
        out(f"{'name':<14} {'kind':<7} {'needs':<52} title")
        for spec in registry.all_analyses():
            needs = ",".join(spec.needs) or "-"
            out(f"{spec.name:<14} {spec.kind:<7} {needs:<52} {spec.title}")
        return 0
    if not args.names:
        out("error: name at least one analysis, or pass --list")
        return 2
    try:
        selected = [registry.get(name) for name in args.names]
    except KeyError as exc:
        out(f"error: {exc.args[0]}")
        return 2
    try:
        plan = ExecutionPlan(workers=args.workers, batch_size=args.batch_size)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    status = _status_out(args, out)
    dataset = _simulate(args, status)
    # A lazy result: each analysis resolves only its declared needs, so a
    # report over inference-free artifacts never runs the inference pass.
    result: StudyResult = StudyPipeline(dataset, plan=plan).result()
    computed = {spec.name: spec.run(result) for spec in selected}
    if args.format == "json":
        out(
            json.dumps(
                {
                    "command": "report",
                    "scale": args.scale,
                    "seed": args.seed,
                    "analyses": {name: res.to_dict() for name, res in computed.items()},
                },
                indent=2,
            )
        )
        return 0
    for res in computed.values():
        out("")
        out(res.render())
    return 0


def _cmd_sweep(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    try:
        plan = ExecutionPlan(workers=args.workers, batch_size=args.batch_size)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    if args.seeds < 1:
        out("error: --seeds must be >= 1")
        return 2
    seeds = tuple(args.seed + offset for offset in range(args.seeds))
    try:
        matrix = ScenarioMatrix(
            seeds=seeds,
            ablations=args.ablate or ("baseline",),
            scales=args.scale or ("small",),
        )
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    report_names = tuple(args.report or ())
    try:
        for name in report_names:
            registry.get(name)
    except KeyError as exc:
        out(f"error: {exc.args[0]}")
        return 2
    status = _status_out(args, out)
    campaign = StudyCampaign(matrix, plan=plan)
    status(
        f"Sweeping {len(matrix)} cells "
        f"(scales {'/'.join(matrix.scales)}, seeds {'/'.join(map(str, seeds))}, "
        f"ablations {'/'.join(spec.name for spec in matrix.ablations)}) ..."
    )
    # With --report the sweep is needs-pruned: only the stages the named
    # analyses can trigger run, so e.g. `sweep --report fig2` never
    # constructs an inference engine in any cell.  Without it, every cell
    # is fully materialised (fused: one stream pass per cell group).
    results = campaign.run(analyses=report_names or None)
    tables = {name: results.tabulate(name) for name in report_names}
    counts = results.build_counts
    cells = len(matrix)

    def cell_axes(cell) -> dict:
        return {
            "cell": cell.label,
            "seed": cell.seed,
            "scale": cell.scale,
            "ablation": cell.ablation.name,
        }

    def cell_entry(cell, result) -> dict:
        entry = cell_axes(cell)
        # Study numbers only when the inference stage already ran for the
        # cell (always on a full sweep; on a pruned sweep only when the
        # requested analyses forced it) -- never trigger it just for them.
        if result.context.has("observations"):
            report = result.report
            entry.update(
                observations=len(result.observations),
                providers=len(report.providers()),
                users=len(report.users()),
                prefixes=len(report.ipv4_prefixes()),
            )
        return entry

    if args.format == "json":
        cell_payload = [cell_entry(cell, result) for cell, result in results.items()]
        out(
            json.dumps(
                {
                    "command": "sweep",
                    "cells": cell_payload,
                    "build_counts": dict(counts),
                    "reports": {
                        name: table.to_dict() for name, table in tables.items()
                    },
                },
                indent=2,
            )
        )
        return 0

    if not report_names:
        out("")
        out(f"{'cell':<34} {'obs':>6} {'providers':>9} {'users':>6} {'prefixes':>8}")
        for cell, result in results.items():
            report = result.report
            out(
                f"{cell.label:<34} {len(result.observations):>6} "
                f"{len(report.providers()):>9} {len(report.users()):>6} "
                f"{len(report.ipv4_prefixes()):>8}"
            )

    out("")
    out("Shared-artifact savings (stage builds vs. independent runs):")
    for stage in ("dataset", "dictionary", "usage_stats", "inference", "stream_pass"):
        out(f"  {stage:<12} {counts.get(stage, 0):>3} build(s) for {cells} cells")

    for name in report_names:
        out("")
        out(tables[name].render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Inferring BGP Blackholing Activity in the Internet'",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scale",
            choices=tuple(SCALE_PRESETS),
            default="small",
            help="scenario size preset (default: small)",
        )
        sub.add_argument("--seed", type=int, default=23, help="scenario seed")

    simulate = subparsers.add_parser(
        "simulate", help="generate a scenario and print its statistics"
    )
    add_common(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    study = subparsers.add_parser(
        "study", help="run the full inference study and print results"
    )
    add_common(study)
    study.add_argument(
        "--report",
        choices=("summary", "tables", "all"),
        default="summary",
        help="what to print (default: summary)",
    )
    study.add_argument(
        "--workers",
        type=int,
        default=1,
        help="number of prefix shards for the inference pass (default: 1, serial)",
    )
    study.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="inner-loop chunk size for the inference engines (default: per elem)",
    )
    study.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json: AnalysisResult payloads; default: text)",
    )
    study.set_defaults(func=_cmd_study)

    report = subparsers.add_parser(
        "report",
        help="compute named figure/table artifacts from the analysis registry",
    )
    add_common(report)
    report.add_argument(
        "names",
        nargs="*",
        metavar="ANALYSIS",
        help="registered analysis names (see --list), e.g. fig2 table1",
    )
    report.add_argument(
        "--list",
        action="store_true",
        help="enumerate the analysis registry and exit",
    )
    report.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    report.add_argument(
        "--workers",
        type=int,
        default=1,
        help="number of prefix shards for inference-needing analyses (default: 1)",
    )
    report.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="inner-loop chunk size for the inference engines (default: per elem)",
    )
    report.set_defaults(func=_cmd_report)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a scenario campaign (seeds x ablations x scales) with "
        "cross-cell artifact sharing",
    )
    sweep.add_argument(
        "--scale",
        action="append",
        choices=tuple(SCALE_PRESETS),
        help="scale preset for the ladder; repeatable (default: small)",
    )
    sweep.add_argument(
        "--seed", type=int, default=23, help="first scenario seed (default: 23)"
    )
    sweep.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="number of consecutive seeds starting at --seed (default: 1)",
    )
    sweep.add_argument(
        "--ablate",
        action="append",
        choices=tuple(ABLATIONS),
        help="ablation variant to include; repeatable (default: baseline)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="number of prefix shards for the shared execution plan (default: 1)",
    )
    sweep.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="inner-loop chunk size for the inference engines (default: per elem)",
    )
    sweep.add_argument(
        "--report",
        action="append",
        metavar="ANALYSIS",
        help="registered analysis to tabulate across all cells; repeatable "
        "(see `repro report --list`); prunes the sweep to the stages the "
        "named analyses need instead of materialising every cell",
    )
    sweep.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    sweep.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: Sequence[str] | None = None, out: Callable[[str], None] = print) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
