"""Command-line interface.

``python -m repro`` runs the full study on a simulated scenario and prints
the requested tables/summaries, so the pipeline can be exercised without
writing any code::

    python -m repro study --scale small --seed 23 --report tables
    python -m repro study --scale small --report summary --format json
    python -m repro study --scale bench --workers 4    # shard-parallel inference
    python -m repro simulate --scale small     # scenario statistics only
    python -m repro sweep --scale small --seeds 2 --ablate baseline \\
        --ablate no-bundling                   # shared-artifact campaign
    python -m repro sweep --scale small --store runs/ --resume  # durable+resumable
    python -m repro sweep --scale small --store runs/ \\
        --workers-distributed 4                # fleet of worker processes
    python -m repro worker --scale small --store runs/  # join from any host
    python -m repro sweep --scale small --store runs/ --status  # queue state
    python -m repro report --list              # enumerate the analysis registry
    python -m repro report fig2 table1 --format json
    python -m repro report table1 --store runs/ --output artifacts/

The ``--scale`` presets map to the scenario configurations used by the tests
(``small``), the benchmark harness (``bench``), and the paper's analysis and
longitudinal windows (``analysis``, ``longitudinal``); larger scales take
correspondingly longer.  ``sweep`` expands a scenario matrix (seeds x
ablations x scales) through one :class:`~repro.exec.campaign.StudyCampaign`:
grid-invariant artifacts are computed once, and cells sharing a stream run
their inference engines fused -- one stream iteration feeding every cell.
Its ``--report`` flag tabulates registered analyses across all cells *and*
prunes the schedule to the stages those analyses need, so
``sweep --report fig2`` never runs inference at all; ``--by``/``--aggregate``
group and collapse those tables across an axis (e.g. mean over seeds).
``--store DIR`` makes the campaign durable: every shareable stage product is
persisted content-addressed under ``DIR``, and ``--resume`` lets a fresh
process pick the sweep back up with zero rebuilds of grid-invariant stages.
``--workers-distributed N`` turns the store into a shared work-queue served
by N worker processes (lease-based claims, exactly-once shared-stage builds
fleet-wide); standalone ``repro worker --store DIR`` invocations -- on this
host or any other sharing the path -- join the same queue, and ``sweep
--status --store DIR`` inspects its cell/lease/worker state.
``report`` resolves named figure/table artifacts lazily -- each analysis
builds only the pipeline stages its registry entry declares, so e.g.
``repro report fig2`` never pays for the inference pass.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from importlib import metadata
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis import fig4, registry
from repro.analysis.pipeline import StudyPipeline, StudyResult
from repro.exec.campaign import ABLATIONS, AblationSpec, ScenarioMatrix, StudyCampaign
from repro.exec.context import ArtifactCache
from repro.exec.plan import ExecutionPlan
from repro.exec.spill import DEFAULT_MAX_RESIDENT_OBSERVATIONS
from repro.exec.store import DiskStore, dump_artifact
from repro.routing.collectors import (
    PROJECT_CDN,
    PROJECT_PCH,
    PROJECT_RIS,
    PROJECT_ROUTEVIEWS,
)
from repro.workload.config import SCALE_PRESETS, ScenarioConfig
from repro.workload.simulation import ScenarioDataset, ScenarioSimulator

#: Collector projects a sweep can be restricted to (--projects), drawn from
#: the canonical platform names so the choices cannot drift.
PROJECT_CHOICES = (PROJECT_RIS, PROJECT_ROUTEVIEWS, PROJECT_PCH, PROJECT_CDN)

__all__ = ["main"]


def _status_out(args: argparse.Namespace, out: Callable[[str], None]) -> Callable[[str], None]:
    """Where progress lines go: swallowed when the payload must be pure JSON."""
    if getattr(args, "format", "text") == "json":
        return lambda _line: None
    return out


def _package_version() -> str:
    """The version of the package actually executing.

    ``repro.__version__`` is the source of truth -- the distribution
    metadata is generated from it at build time -- and, unlike the
    installed distribution's version, always matches the code running
    (e.g. a ``PYTHONPATH=src`` tree next to an older install).
    """
    try:
        from repro import __version__

        return __version__
    except ImportError:  # pragma: no cover - attribute removed
        return metadata.version("repro-bgp-blackholing")


def _build_plan(args: argparse.Namespace) -> ExecutionPlan:
    """The execution plan shared by study/report/sweep (raises ValueError).

    One construction site for the layout knobs (--workers, --batch-size,
    --spill-dir, --max-resident-observations) so the commands cannot drift.
    """
    return ExecutionPlan(
        workers=args.workers,
        batch_size=args.batch_size,
        spill_dir=args.spill_dir,
        max_resident_observations=args.max_resident_observations,
    )


def _simulate(args: argparse.Namespace, out: Callable[[str], None]) -> ScenarioDataset:
    config = ScenarioConfig.for_scale(args.scale, seed=args.seed)
    out(f"Simulating scenario '{args.scale}' (seed {args.seed}) ...")
    dataset = ScenarioSimulator(config).generate()
    out(
        f"  ASes: {len(dataset.topology.ases)}, IXPs: {len(dataset.topology.ixps)}, "
        f"blackholing services: {len(dataset.topology.blackholing_services)}"
    )
    out(
        f"  attacks: {len(dataset.timeline)}, blackholing requests: {len(dataset.requests)}, "
        f"BGP update messages: {dataset.message_count}"
    )
    out(
        f"  window: {dataset.config.start_date} .. {dataset.config.end_date} "
        f"({dataset.config.duration_days:.0f} days)"
    )
    return dataset


def _cmd_simulate(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    _simulate(args, out)
    return 0


def _cmd_study(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    # Validate the execution layout before paying for the simulation; the
    # same plan instance then drives the pipeline.
    try:
        plan = _build_plan(args)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    status = _status_out(args, out)
    dataset = _simulate(args, status)
    pipeline = StudyPipeline(dataset, plan=plan)
    if args.workers > 1:
        status(
            f"Running the dictionary + inference pipeline "
            f"({args.workers} shards, {pipeline.plan.resolved_backend()} backend) ..."
        )
    else:
        status("Running the dictionary + inference pipeline ...")
    result = pipeline.run()

    if args.format == "json":
        names = {
            "summary": ("table3_summary",),
            "tables": ("table1", "table2", "table3", "table4"),
            "all": ("table3_summary", "table1", "table2", "table3", "table4"),
        }[args.report]
        out(
            json.dumps(
                {
                    "command": "study",
                    "scale": args.scale,
                    "seed": args.seed,
                    "analyses": {
                        name: res.to_dict()
                        for name, res in result.analyses(names).items()
                    },
                },
                indent=2,
            )
        )
        return 0

    report = result.report
    if args.report in ("summary", "all"):
        out("")
        out("Study summary")
        out(f"  documented communities: {result.dictionary.community_count()} "
            f"({result.dictionary.provider_count()} providers)")
        out(f"  inferred communities:   {result.inferred_dictionary.community_count()}")
        out(f"  blackholing providers:  {len(report.providers())}")
        out(f"  blackholing users:      {len(report.users())}")
        out(f"  blackholed prefixes:    {len(report.ipv4_prefixes())} IPv4 "
            f"({report.host_route_fraction():.1%} /32s)")
        out(f"  bundling share:         {report.bundled_fraction():.1%}")
        daily = fig4.compute_daily_activity(result)
        if daily:
            peak = max(daily, key=lambda d: d.prefixes)
            out(f"  peak daily prefixes:    {peak.prefixes}")

    if args.report in ("tables", "all"):
        for name in ("table1", "table2", "table3", "table4"):
            out("")
            out(result.analysis(name).render())
    return 0


def _cmd_report(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    if args.list:
        if args.format == "json":
            out(
                json.dumps(
                    {
                        "command": "report",
                        "analyses": [
                            {
                                "name": spec.name,
                                "kind": spec.kind,
                                "needs": list(spec.needs),
                                "title": spec.title,
                            }
                            for spec in registry.all_analyses()
                        ],
                    },
                    indent=2,
                )
            )
            return 0
        out(f"{'name':<14} {'kind':<7} {'needs':<52} title")
        for spec in registry.all_analyses():
            needs = ",".join(spec.needs) or "-"
            out(f"{spec.name:<14} {spec.kind:<7} {needs:<52} {spec.title}")
        return 0
    if not args.names:
        out("error: name at least one analysis, or pass --list")
        return 2
    try:
        selected = [registry.get(name) for name in args.names]
    except KeyError as exc:
        out(f"error: {exc.args[0]}")
        return 2
    try:
        plan = _build_plan(args)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    status = _status_out(args, out)
    dataset = _simulate(args, status)
    # A lazy result: each analysis resolves only its declared needs, so a
    # report over inference-free artifacts never runs the inference pass.
    # With --store, shareable stages read from (and warm) a durable campaign
    # store -- a report over a scenario some sweep already paid for loads
    # its dictionaries and usage statistics from disk.
    shared_cache = None
    if args.store:
        shared_cache = ArtifactCache(DiskStore(args.store))
    result: StudyResult = StudyPipeline(
        dataset, plan=plan, shared_cache=shared_cache
    ).result()
    computed = {spec.name: spec.run(result) for spec in selected}
    if args.output:
        output_dir = Path(args.output)
        output_dir.mkdir(parents=True, exist_ok=True)
        for name, res in computed.items():
            _, payload = dump_artifact(res)  # the "analysis" wire format
            target = output_dir / f"{name}.json"
            target.write_bytes(payload)
            status(f"wrote {target}")
    if args.format == "json":
        out(
            json.dumps(
                {
                    "command": "report",
                    "scale": args.scale,
                    "seed": args.seed,
                    "analyses": {name: res.to_dict() for name, res in computed.items()},
                },
                indent=2,
            )
        )
        return 0
    for res in computed.values():
        out("")
        out(res.render())
    return 0


def _build_matrix(args: argparse.Namespace) -> ScenarioMatrix:
    """The scenario matrix shared by sweep/worker/--status (raises ValueError).

    One construction site for the grid axes: a ``repro worker`` joining a
    sweep's queue must derive the *identical* matrix (the queue is
    addressed by the cells' content digest), so both commands parse their
    axis flags through this helper.
    """
    if args.seeds < 1:
        raise ValueError("--seeds must be >= 1")
    seeds = tuple(args.seed + offset for offset in range(args.seeds))
    # The ablation axis: named registry variants plus ad-hoc grouping-
    # timeout variants (the campaign layer always supported custom specs;
    # --ablate-timeout is the CLI surface for them).
    ablations: list[AblationSpec | str] = list(args.ablate or ())
    for timeout in args.ablate_timeout or ():
        if timeout <= 0:
            raise ValueError("--ablate-timeout must be a positive number of seconds")
        ablations.append(AblationSpec(f"timeout-{timeout:g}s", grouping_timeout=timeout))
    return ScenarioMatrix(
        seeds=seeds,
        ablations=ablations or ("baseline",),
        scales=args.scale or ("small",),
    )


def _cmd_sweep(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    try:
        plan = _build_plan(args)
        matrix = _build_matrix(args)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    if args.resume and not args.store:
        out("error: --resume requires --store DIR")
        return 2
    if (args.aggregate or args.by != "cell") and not args.report:
        out("error: --by/--aggregate shape tabulated reports; add --report ANALYSIS")
        return 2
    if args.status:
        return _sweep_status(args, matrix, out)
    if args.workers_distributed:
        return _sweep_distributed(args, plan, matrix, out)
    seeds = matrix.seeds
    report_names = tuple(args.report or ())
    try:
        for name in report_names:
            registry.get(name)
    except KeyError as exc:
        out(f"error: {exc.args[0]}")
        return 2
    status = _status_out(args, out)
    store = DiskStore(args.store, resume=args.resume) if args.store else None
    projects = set(args.projects) if args.projects else None
    campaign = StudyCampaign(matrix, plan=plan, projects=projects, store=store)
    status(
        f"Sweeping {len(matrix)} cells "
        f"(scales {'/'.join(matrix.scales)}, seeds {'/'.join(map(str, seeds))}, "
        f"ablations {'/'.join(spec.name for spec in matrix.ablations)}"
        + (f", projects {'/'.join(sorted(projects))}" if projects else "")
        + ") ..."
    )
    if store is not None:
        preexisting = len(store)
        mode = "resuming" if args.resume else "cold run"
        if not args.resume and preexisting:
            # Conflicting digests stay pinned in memory on a cold run (the
            # pre-existing bytes are neither read nor clobbered), so the
            # disk spill is effectively off -- worth telling the user.
            mode = "cold run; pre-existing entries ignored, pass --resume to reuse"
        status(f"Artifact store: {args.store} ({preexisting} durable entries, {mode})")
    # With --report the sweep is needs-pruned: only the stages the named
    # analyses can trigger run, so e.g. `sweep --report fig2` never
    # constructs an inference engine in any cell.  Without it, every cell
    # is fully materialised (fused: one stream pass per cell group).
    results = campaign.run(analyses=report_names or None)
    try:
        tables = {
            name: results.tabulate(name, by=args.by, aggregate=args.aggregate)
            for name in report_names
        }
    except ValueError as exc:
        # e.g. aggregating an analysis whose row sets differ across the
        # grouped cells (fig7's per-cell event rows) -- user input, not a
        # bug: report it the CLI way instead of a traceback.
        out(f"error: {exc}")
        return 2
    counts = results.build_counts
    cells = len(matrix)
    # One directory walk, shared by the JSON and text footers.
    durable_entries = len(store) if store is not None else 0

    def cell_axes(cell) -> dict:
        return {
            "cell": cell.label,
            "seed": cell.seed,
            "scale": cell.scale,
            "ablation": cell.ablation.name,
            # Producer attribution: distributed sweeps fill this with the
            # worker that completed the cell; an in-process sweep has none.
            "worker": None,
        }

    def cell_entry(cell, result) -> dict:
        entry = cell_axes(cell)
        # Study numbers only when the inference stage already ran for the
        # cell (always on a full sweep; on a pruned sweep only when the
        # requested analyses forced it) -- never trigger it just for them.
        if result.context.has("observations"):
            report = result.report
            outcome = result.context.get("execution_outcome")
            entry.update(
                observations=len(result.observations),
                providers=len(report.providers()),
                users=len(report.users()),
                prefixes=len(report.ipv4_prefixes()),
                # Dispatch counters: a batched plan routes whole ElemBatch
                # columns (process_calls stays 0), the elem path the reverse;
                # row_touches counts rows that reached Python-level handling
                # (all kept elems per-elem, interesting rows only batched);
                # rows_materialised counts StreamElems the kernel forced out
                # of lazy-row batches (at most row_touches, 0 when eager).
                batches_processed=outcome.engine_stats.batches_processed,
                process_calls=outcome.engine_stats.process_calls,
                row_touches=outcome.engine_stats.row_touches,
                rows_materialised=outcome.engine_stats.rows_materialised,
            )
            if outcome.spill is not None:
                entry["spill"] = dataclasses.asdict(outcome.spill)
        return entry

    if args.format == "json":
        cell_payload = [cell_entry(cell, result) for cell, result in results.items()]
        payload = {
            "command": "sweep",
            "cells": cell_payload,
            "build_counts": dict(counts),
            "reports": {name: table.to_dict() for name, table in tables.items()},
        }
        if store is not None:
            payload["store"] = {
                "path": args.store,
                "resume": bool(args.resume),
                "entries": durable_entries,
            }
        out(json.dumps(payload, indent=2))
        return 0

    if not report_names:
        out("")
        out(f"{'cell':<34} {'obs':>6} {'providers':>9} {'users':>6} {'prefixes':>8}")
        for cell, result in results.items():
            report = result.report
            out(
                f"{cell.label:<34} {len(result.observations):>6} "
                f"{len(report.providers()):>9} {len(report.users()):>6} "
                f"{len(report.ipv4_prefixes()):>8}"
            )

    out("")
    out("Shared-artifact savings (stage builds vs. independent runs):")
    for stage in ("dataset", "dictionary", "usage_stats", "inference", "stream_pass"):
        out(f"  {stage:<12} {counts.get(stage, 0):>3} build(s) for {cells} cells")
    if store is not None:
        out(f"  store        {durable_entries:>3} durable entries in {args.store}")

    for name in report_names:
        out("")
        out(tables[name].render())
    return 0


def _sweep_status(
    args: argparse.Namespace, matrix: ScenarioMatrix, out: Callable[[str], None]
) -> int:
    """Inspect a distributed sweep's queue/lease/worker state (read-only)."""
    from repro.exec.distrib import CellQueue

    if not args.store:
        out("error: --status requires --store DIR (the queue lives in the store)")
        return 2
    queue = CellQueue(args.store, matrix.cells())
    if not queue.populated():
        out(
            f"error: no queue for this grid under {args.store} "
            f"(campaign {queue.campaign_digest}); start one with "
            "--workers-distributed or `repro worker`"
        )
        return 2
    status = queue.status()
    if args.format == "json":
        out(json.dumps({"command": "sweep", "status": status.to_dict()}, indent=2))
        return 0
    out(status.render())
    return 0


def _sweep_distributed(
    args: argparse.Namespace,
    plan: ExecutionPlan,
    matrix: ScenarioMatrix,
    out: Callable[[str], None],
) -> int:
    """Serve the grid with N cooperating worker processes over one store."""
    if not args.store:
        out("error: --workers-distributed requires --store DIR (the shared queue "
            "and artifacts live in the store)")
        return 2
    if args.workers_distributed < 1:
        out("error: --workers-distributed must be >= 1")
        return 2
    if args.report:
        out("error: --report is not available with --workers-distributed; "
            "inspect cells via --status or tabulate from a follow-up "
            "`repro sweep --store DIR --resume --report ...`")
        return 2
    status = _status_out(args, out)
    store = DiskStore(args.store, resume=True)
    projects = set(args.projects) if args.projects else None
    campaign = StudyCampaign(matrix, plan=plan, projects=projects, store=store)
    status(
        f"Sweeping {len(matrix)} cells with {args.workers_distributed} "
        f"distributed worker(s) over {args.store} ..."
    )
    outcome = campaign.run_distributed(
        workers=args.workers_distributed,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        status_out=status,
    )
    done = outcome.done
    counts = outcome.build_counts
    cell_payload = []
    for cell in matrix.cells():
        record = done.get(outcome.queue.cell_id(cell))
        entry = {
            "cell": cell.label,
            "seed": cell.seed,
            "scale": cell.scale,
            "ablation": cell.ablation.name,
            "worker": record.get("worker") if record else None,
        }
        if record:
            entry.update(
                attempt=record.get("attempt"),
                observations=record.get("observations"),
                providers=record.get("providers"),
                users=record.get("users"),
                prefixes=record.get("prefixes"),
                batches_processed=record.get("batches_processed"),
                process_calls=record.get("process_calls"),
                row_touches=record.get("row_touches"),
                rows_materialised=record.get("rows_materialised"),
            )
        cell_payload.append(entry)
    if args.format == "json":
        out(
            json.dumps(
                {
                    "command": "sweep",
                    "distributed": {
                        "workers": args.workers_distributed,
                        "worker_exits": [
                            {"worker": name, "exitcode": code}
                            for name, code in outcome.worker_exits
                        ],
                        "complete": outcome.complete,
                    },
                    "cells": cell_payload,
                    "build_counts": dict(counts),
                    "status": outcome.status.to_dict(),
                    "store": {
                        "path": args.store,
                        "resume": True,
                        "entries": len(store),
                    },
                },
                indent=2,
            )
        )
        return 0 if outcome.complete else 1
    out("")
    out(f"{'cell':<34} {'obs':>6} {'providers':>9} {'users':>6} {'prefixes':>8} worker")
    for entry in cell_payload:
        out(
            f"{entry['cell']:<34} {entry.get('observations') or '-':>6} "
            f"{entry.get('providers') or '-':>9} {entry.get('users') or '-':>6} "
            f"{entry.get('prefixes') or '-':>8} {entry.get('worker') or '-'}"
        )
    out("")
    out("Fleet-wide stage builds (aggregated worker ledgers):")
    for stage in ("dataset", "dictionary", "usage_stats", "inferred_dictionary",
                  "effective_dictionary", "inference", "stream_pass"):
        out(f"  {stage:<20} {counts.get(stage, 0):>3} build(s) for {len(matrix)} cells")
    out(f"  store                {len(store):>3} durable entries in {args.store}")
    if not outcome.complete:
        out("warning: the grid did not drain cleanly; see `repro sweep --status`")
        return 1
    return 0


def _cmd_worker(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """One standalone queue worker: claim cells until the grid drains.

    Several invocations -- on one host or many sharing the store path --
    cooperate on the same grid.  SIGTERM/SIGINT request a graceful stop:
    the worker finishes the cell in hand, explicitly releases any other
    claims it holds (no TTL wait for the rest of the fleet), records its
    ledger and exits 0; a second signal falls back to the default (abrupt)
    behaviour, which lease expiry also survives.
    """
    import signal
    import threading

    from repro.exec.distrib import run_worker

    try:
        plan = _build_plan(args)
        matrix = _build_matrix(args)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    if args.claim_batch < 1:
        out("error: --claim-batch must be >= 1")
        return 2
    projects = set(args.projects) if args.projects else None
    store = DiskStore(args.store, resume=True)
    campaign = StudyCampaign(matrix, plan=plan, projects=projects, store=store)
    stop_event = threading.Event()
    previous = {}

    def _graceful(signum, frame):
        out(f"worker: received {signal.Signals(signum).name}, finishing current "
            "cell and releasing other claims ...")
        stop_event.set()
        # A second signal gets the default handling (abrupt exit; the
        # lease TTL and the store's init sweep cover that path too).
        for sig, handler in previous.items():
            signal.signal(sig, handler)

    for sig in (signal.SIGTERM, signal.SIGINT):
        previous[sig] = signal.signal(sig, _graceful)
    ledger = run_worker(
        campaign,
        args.store,
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        claim_batch=args.claim_batch,
        max_cells=args.max_cells,
        stop_event=stop_event,
        status_out=out,
    )
    out(
        f"worker {ledger.worker}: {len(ledger.cells)} cell(s) completed, "
        f"builds {dict(sorted(ledger.build_counts.items()))}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Inferring BGP Blackholing Activity in the Internet'",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scale",
            choices=tuple(SCALE_PRESETS),
            default="small",
            help="scenario size preset (default: small)",
        )
        sub.add_argument("--seed", type=int, default=23, help="scenario seed")

    def add_spill_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--spill-dir",
            metavar="DIR",
            default=None,
            help="bound resident memory: spill closed observations to "
            "temporaries under DIR and re-stream them when results are "
            "merged (bit-identical output; temporaries are removed)",
        )
        sub.add_argument(
            "--max-resident-observations",
            type=int,
            default=None,
            metavar="N",
            help="per-engine resident-observation cap used with --spill-dir "
            f"(default: {DEFAULT_MAX_RESIDENT_OBSERVATIONS})",
        )

    simulate = subparsers.add_parser(
        "simulate", help="generate a scenario and print its statistics"
    )
    add_common(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    study = subparsers.add_parser(
        "study", help="run the full inference study and print results"
    )
    add_common(study)
    study.add_argument(
        "--report",
        choices=("summary", "tables", "all"),
        default="summary",
        help="what to print (default: summary)",
    )
    study.add_argument(
        "--workers",
        type=int,
        default=1,
        help="number of prefix shards for the inference pass (default: 1, serial)",
    )
    study.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="columnar ElemBatch size for the engines' vectorised hot path "
        "(default: per-elem dispatch)",
    )
    add_spill_args(study)
    study.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json: AnalysisResult payloads; default: text)",
    )
    study.set_defaults(func=_cmd_study)

    report = subparsers.add_parser(
        "report",
        help="compute named figure/table artifacts from the analysis registry",
    )
    add_common(report)
    report.add_argument(
        "names",
        nargs="*",
        metavar="ANALYSIS",
        help="registered analysis names (see --list), e.g. fig2 table1",
    )
    report.add_argument(
        "--list",
        action="store_true",
        help="enumerate the analysis registry and exit",
    )
    report.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    report.add_argument(
        "--workers",
        type=int,
        default=1,
        help="number of prefix shards for inference-needing analyses (default: 1)",
    )
    report.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="columnar ElemBatch size for the engines' vectorised hot path "
        "(default: per-elem dispatch)",
    )
    add_spill_args(report)
    report.add_argument(
        "--store",
        metavar="DIR",
        help="durable artifact store (see `sweep --store`): shareable stages "
        "load from DIR when a previous run published them, and new builds "
        "are persisted there",
    )
    report.add_argument(
        "--output",
        metavar="DIR",
        help="write each computed analysis as DIR/<name>.json "
        "(AnalysisResult.to_dict payloads via the artifact serialisers)",
    )
    report.set_defaults(func=_cmd_report)

    def add_matrix_args(sub: argparse.ArgumentParser) -> None:
        # The grid axes, shared by `sweep` and `worker`: a worker joining a
        # sweep's queue must spell out the identical grid (the queue is
        # addressed by the cells' content digest).
        sub.add_argument(
            "--scale",
            action="append",
            choices=tuple(SCALE_PRESETS),
            help="scale preset for the ladder; repeatable (default: small)",
        )
        sub.add_argument(
            "--seed", type=int, default=23, help="first scenario seed (default: 23)"
        )
        sub.add_argument(
            "--seeds",
            type=int,
            default=1,
            help="number of consecutive seeds starting at --seed (default: 1)",
        )
        sub.add_argument(
            "--ablate",
            action="append",
            choices=tuple(ABLATIONS),
            help="ablation variant to include; repeatable (default: baseline)",
        )
        sub.add_argument(
            "--ablate-timeout",
            action="append",
            type=float,
            metavar="SECONDS",
            help="add an ablation variant using the given grouping timeout; "
            "repeatable (named timeout-<seconds>s in the grid)",
        )
        sub.add_argument(
            "--projects",
            action="append",
            choices=PROJECT_CHOICES,
            help="restrict the streams to these collector projects; repeatable "
            "(default: all projects)",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            help="number of prefix shards for the shared execution plan (default: 1)",
        )
        sub.add_argument(
            "--batch-size",
            type=int,
            default=None,
            help="columnar ElemBatch size for the engines' vectorised hot path "
            "(default: per-elem dispatch)",
        )
        add_spill_args(sub)

    def add_lease_args(sub: argparse.ArgumentParser) -> None:
        from repro.exec.distrib import DEFAULT_LEASE_TTL, DEFAULT_MAX_ATTEMPTS

        sub.add_argument(
            "--lease-ttl",
            type=float,
            default=DEFAULT_LEASE_TTL,
            metavar="SECONDS",
            help="cell-lease time-to-live: a worker silent this long is presumed "
            f"dead and its cell reclaimed (default: {DEFAULT_LEASE_TTL:g})",
        )
        sub.add_argument(
            "--max-attempts",
            type=int,
            default=DEFAULT_MAX_ATTEMPTS,
            metavar="N",
            help="poison a cell after N abandoned attempts instead of retrying "
            f"it forever (default: {DEFAULT_MAX_ATTEMPTS})",
        )

    sweep = subparsers.add_parser(
        "sweep",
        help="run a scenario campaign (seeds x ablations x scales) with "
        "cross-cell artifact sharing",
    )
    add_matrix_args(sweep)
    sweep.add_argument(
        "--report",
        action="append",
        metavar="ANALYSIS",
        help="registered analysis to tabulate across all cells; repeatable "
        "(see `repro report --list`); prunes the sweep to the stages the "
        "named analyses need instead of materialising every cell",
    )
    sweep.add_argument(
        "--by",
        choices=("cell", "seed", "scale", "ablation"),
        default="cell",
        help="axis labelling the tabulated --report entries (default: cell)",
    )
    sweep.add_argument(
        "--aggregate",
        choices=("mean", "stddev"),
        help="collapse tabulated --report results per --by label (numeric "
        "columns aggregated across the group's cells, e.g. over seeds)",
    )
    sweep.add_argument(
        "--store",
        metavar="DIR",
        help="persist shareable stage artifacts to a content-addressed "
        "store at DIR (created if missing); killed runs leave no partial "
        "entries",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="reuse artifacts already in --store DIR: previously published "
        "grid-invariant stages rebuild zero times (without this flag "
        "pre-existing entries are ignored, but the run still persists)",
    )
    sweep.add_argument(
        "--workers-distributed",
        type=int,
        default=0,
        metavar="N",
        help="serve the grid with N cooperating worker processes over the "
        "--store queue (lease-based claims, shared stages built exactly "
        "once fleet-wide); `repro worker` instances on other hosts may "
        "join the same queue",
    )
    sweep.add_argument(
        "--status",
        action="store_true",
        help="inspect the distributed queue for this grid under --store "
        "(cell states, leases, per-worker ledgers) instead of running",
    )
    add_lease_args(sweep)
    sweep.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    worker = subparsers.add_parser(
        "worker",
        help="join a distributed sweep as one queue worker (multi-host: "
        "point every invocation at the same --store)",
    )
    add_matrix_args(worker)
    worker.add_argument(
        "--store",
        metavar="DIR",
        required=True,
        help="the shared campaign store holding the cell queue and artifacts",
    )
    add_lease_args(worker)
    worker.add_argument(
        "--worker-id",
        default=None,
        metavar="NAME",
        help="this worker's identity in leases and ledgers "
        "(default: <host>-<pid>)",
    )
    worker.add_argument(
        "--claim-batch",
        type=int,
        default=1,
        metavar="N",
        help="cells to claim per sweep of the queue; claims sharing a stream "
        "identity fuse into one multi-engine pass (default: 1)",
    )
    worker.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="exit after completing N cells (default: run until the queue "
        "drains)",
    )
    worker.set_defaults(func=_cmd_worker)
    return parser


def main(argv: Sequence[str] | None = None, out: Callable[[str], None] = print) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
