"""Command-line interface.

``python -m repro`` runs the full study on a simulated scenario and prints
the requested tables/summaries, so the pipeline can be exercised without
writing any code::

    python -m repro study --scale small --seed 23 --report tables
    python -m repro study --scale small --report summary
    python -m repro study --scale bench --workers 4    # shard-parallel inference
    python -m repro simulate --scale small     # scenario statistics only
    python -m repro sweep --scale small --seeds 2 --ablate baseline \\
        --ablate no-bundling                   # shared-artifact campaign

The ``--scale`` presets map to the scenario configurations used by the tests
(``small``), the benchmark harness (``bench``), and the paper's analysis and
longitudinal windows (``analysis``, ``longitudinal``); larger scales take
correspondingly longer.  ``sweep`` expands a scenario matrix (seeds x
ablations x scales) through one :class:`~repro.exec.campaign.StudyCampaign`,
so artifacts that are invariant across the grid are computed once.
"""

from __future__ import annotations

import argparse
import sys
from importlib import metadata
from typing import Callable, Sequence

from repro.analysis import fig4, table1, table2, table3, table4
from repro.analysis.pipeline import StudyPipeline
from repro.exec.campaign import ABLATIONS, ScenarioMatrix, StudyCampaign
from repro.exec.plan import ExecutionPlan
from repro.workload.config import SCALE_PRESETS, ScenarioConfig
from repro.workload.simulation import ScenarioDataset, ScenarioSimulator

__all__ = ["build_scenario_config", "main"]


def build_scenario_config(scale: str, seed: int) -> ScenarioConfig:
    """Map a ``--scale`` preset name to a scenario configuration."""
    return ScenarioConfig.for_scale(scale, seed=seed)


def _package_version() -> str:
    """The version of the package actually executing.

    ``repro.__version__`` is the source of truth -- the distribution
    metadata is generated from it at build time -- and, unlike the
    installed distribution's version, always matches the code running
    (e.g. a ``PYTHONPATH=src`` tree next to an older install).
    """
    try:
        from repro import __version__

        return __version__
    except ImportError:  # pragma: no cover - attribute removed
        return metadata.version("repro-bgp-blackholing")


def _simulate(args: argparse.Namespace, out: Callable[[str], None]) -> ScenarioDataset:
    config = build_scenario_config(args.scale, args.seed)
    out(f"Simulating scenario '{args.scale}' (seed {args.seed}) ...")
    dataset = ScenarioSimulator(config).generate()
    out(
        f"  ASes: {len(dataset.topology.ases)}, IXPs: {len(dataset.topology.ixps)}, "
        f"blackholing services: {len(dataset.topology.blackholing_services)}"
    )
    out(
        f"  attacks: {len(dataset.timeline)}, blackholing requests: {len(dataset.requests)}, "
        f"BGP update messages: {dataset.message_count}"
    )
    out(
        f"  window: {dataset.config.start_date} .. {dataset.config.end_date} "
        f"({dataset.config.duration_days:.0f} days)"
    )
    return dataset


def _cmd_simulate(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    _simulate(args, out)
    return 0


def _cmd_study(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    # Validate the execution layout before paying for the simulation; the
    # same plan instance then drives the pipeline.
    try:
        plan = ExecutionPlan(workers=args.workers, batch_size=args.batch_size)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    dataset = _simulate(args, out)
    pipeline = StudyPipeline(dataset, plan=plan)
    if args.workers > 1:
        out(
            f"Running the dictionary + inference pipeline "
            f"({args.workers} shards, {pipeline.plan.resolved_backend()} backend) ..."
        )
    else:
        out("Running the dictionary + inference pipeline ...")
    result = pipeline.run()
    report = result.report

    if args.report in ("summary", "all"):
        out("")
        out("Study summary")
        out(f"  documented communities: {result.dictionary.community_count()} "
            f"({result.dictionary.provider_count()} providers)")
        out(f"  inferred communities:   {result.inferred_dictionary.community_count()}")
        out(f"  blackholing providers:  {len(report.providers())}")
        out(f"  blackholing users:      {len(report.users())}")
        out(f"  blackholed prefixes:    {len(report.ipv4_prefixes())} IPv4 "
            f"({report.host_route_fraction():.1%} /32s)")
        out(f"  bundling share:         {report.bundled_fraction():.1%}")
        daily = fig4.compute_daily_activity(result)
        if daily:
            peak = max(daily, key=lambda d: d.prefixes)
            out(f"  peak daily prefixes:    {peak.prefixes}")

    if args.report in ("tables", "all"):
        out("")
        out(table1.format_table1(table1.compute_table1(dataset)))
        out("")
        out(
            table2.format_table2(
                table2.compute_table2(
                    result.dictionary, result.inferred_dictionary, dataset.topology
                )
            )
        )
        out("")
        out(table3.format_table3(table3.compute_table3(result)))
        out("")
        out(table4.format_table4(table4.compute_table4(result)))
    return 0


def _cmd_sweep(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    try:
        plan = ExecutionPlan(workers=args.workers, batch_size=args.batch_size)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    if args.seeds < 1:
        out("error: --seeds must be >= 1")
        return 2
    seeds = tuple(args.seed + offset for offset in range(args.seeds))
    try:
        matrix = ScenarioMatrix(
            seeds=seeds,
            ablations=args.ablate or ("baseline",),
            scales=args.scale or ("small",),
        )
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    campaign = StudyCampaign(matrix, plan=plan)
    out(
        f"Sweeping {len(matrix)} cells "
        f"(scales {'/'.join(matrix.scales)}, seeds {'/'.join(map(str, seeds))}, "
        f"ablations {'/'.join(spec.name for spec in matrix.ablations)}) ..."
    )
    results = campaign.run()

    out("")
    out(f"{'cell':<34} {'obs':>6} {'providers':>9} {'users':>6} {'prefixes':>8}")
    for cell, result in results.items():
        report = result.report
        out(
            f"{cell.label:<34} {len(result.observations):>6} "
            f"{len(report.providers()):>9} {len(report.users()):>6} "
            f"{len(report.ipv4_prefixes()):>8}"
        )

    counts = results.build_counts
    cells = len(matrix)
    out("")
    out("Shared-artifact savings (stage builds vs. independent runs):")
    for stage in ("dataset", "dictionary", "usage_stats", "inference"):
        out(f"  {stage:<12} {counts.get(stage, 0):>3} build(s) for {cells} cells")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Inferring BGP Blackholing Activity in the Internet'",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scale",
            choices=tuple(SCALE_PRESETS),
            default="small",
            help="scenario size preset (default: small)",
        )
        sub.add_argument("--seed", type=int, default=23, help="scenario seed")

    simulate = subparsers.add_parser(
        "simulate", help="generate a scenario and print its statistics"
    )
    add_common(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    study = subparsers.add_parser(
        "study", help="run the full inference study and print results"
    )
    add_common(study)
    study.add_argument(
        "--report",
        choices=("summary", "tables", "all"),
        default="summary",
        help="what to print (default: summary)",
    )
    study.add_argument(
        "--workers",
        type=int,
        default=1,
        help="number of prefix shards for the inference pass (default: 1, serial)",
    )
    study.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="inner-loop chunk size for the inference engines (default: per elem)",
    )
    study.set_defaults(func=_cmd_study)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a scenario campaign (seeds x ablations x scales) with "
        "cross-cell artifact sharing",
    )
    sweep.add_argument(
        "--scale",
        action="append",
        choices=tuple(SCALE_PRESETS),
        help="scale preset for the ladder; repeatable (default: small)",
    )
    sweep.add_argument(
        "--seed", type=int, default=23, help="first scenario seed (default: 23)"
    )
    sweep.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="number of consecutive seeds starting at --seed (default: 1)",
    )
    sweep.add_argument(
        "--ablate",
        action="append",
        choices=tuple(ABLATIONS),
        help="ablation variant to include; repeatable (default: baseline)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="number of prefix shards for the shared execution plan (default: 1)",
    )
    sweep.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="inner-loop chunk size for the inference engines (default: per elem)",
    )
    sweep.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: Sequence[str] | None = None, out: Callable[[str], None] = print) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
