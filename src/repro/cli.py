"""Command-line interface.

``python -m repro`` runs the full study on a simulated scenario and prints
the requested tables/summaries, so the pipeline can be exercised without
writing any code::

    python -m repro study --scale small --seed 23 --report tables
    python -m repro study --scale small --report summary
    python -m repro study --scale bench --workers 4    # shard-parallel inference
    python -m repro simulate --scale small     # scenario statistics only

The ``--scale`` presets map to the scenario configurations used by the tests
(``small``), the benchmark harness (``bench``), and the paper's analysis and
longitudinal windows (``analysis``, ``longitudinal``); larger scales take
correspondingly longer.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.analysis import fig4, table1, table2, table3, table4
from repro.analysis.pipeline import StudyPipeline
from repro.exec.plan import ExecutionPlan
from repro.attacks.timeline import AttackTimelineConfig
from repro.topology.generator import TopologyConfig
from repro.workload.config import ScenarioConfig
from repro.workload.simulation import ScenarioDataset, ScenarioSimulator

__all__ = ["build_scenario_config", "main"]


def build_scenario_config(scale: str, seed: int) -> ScenarioConfig:
    """Map a ``--scale`` preset name to a scenario configuration."""
    if scale == "small":
        return ScenarioConfig.small(seed=seed)
    if scale == "bench":
        return ScenarioConfig(
            topology=TopologyConfig.default(seed=seed),
            attacks=AttackTimelineConfig(
                seed=seed ^ 0xA77AC, base_rate_start=5.0, base_rate_end=9.0
            ),
            start_date="2016-09-01",
            end_date="2016-12-01",
            seed=seed,
        )
    if scale == "analysis":
        return ScenarioConfig.analysis_window(seed=seed)
    if scale == "longitudinal":
        return ScenarioConfig.paper_window(seed=seed)
    raise ValueError(f"unknown scale {scale!r}")


def _simulate(args: argparse.Namespace, out: Callable[[str], None]) -> ScenarioDataset:
    config = build_scenario_config(args.scale, args.seed)
    out(f"Simulating scenario '{args.scale}' (seed {args.seed}) ...")
    dataset = ScenarioSimulator(config).generate()
    out(
        f"  ASes: {len(dataset.topology.ases)}, IXPs: {len(dataset.topology.ixps)}, "
        f"blackholing services: {len(dataset.topology.blackholing_services)}"
    )
    out(
        f"  attacks: {len(dataset.timeline)}, blackholing requests: {len(dataset.requests)}, "
        f"BGP update messages: {dataset.message_count}"
    )
    out(
        f"  window: {dataset.config.start_date} .. {dataset.config.end_date} "
        f"({dataset.config.duration_days:.0f} days)"
    )
    return dataset


def _cmd_simulate(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    _simulate(args, out)
    return 0


def _cmd_study(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    # Validate the execution layout before paying for the simulation; the
    # same plan instance then drives the pipeline.
    try:
        plan = ExecutionPlan(workers=args.workers, batch_size=args.batch_size)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    dataset = _simulate(args, out)
    pipeline = StudyPipeline(dataset, plan=plan)
    if args.workers > 1:
        out(
            f"Running the dictionary + inference pipeline "
            f"({args.workers} shards, {pipeline.plan.resolved_backend()} backend) ..."
        )
    else:
        out("Running the dictionary + inference pipeline ...")
    result = pipeline.run()
    report = result.report

    if args.report in ("summary", "all"):
        out("")
        out("Study summary")
        out(f"  documented communities: {result.dictionary.community_count()} "
            f"({result.dictionary.provider_count()} providers)")
        out(f"  inferred communities:   {result.inferred_dictionary.community_count()}")
        out(f"  blackholing providers:  {len(report.providers())}")
        out(f"  blackholing users:      {len(report.users())}")
        out(f"  blackholed prefixes:    {len(report.ipv4_prefixes())} IPv4 "
            f"({report.host_route_fraction():.1%} /32s)")
        out(f"  bundling share:         {report.bundled_fraction():.1%}")
        daily = fig4.compute_daily_activity(result)
        if daily:
            peak = max(daily, key=lambda d: d.prefixes)
            out(f"  peak daily prefixes:    {peak.prefixes}")

    if args.report in ("tables", "all"):
        out("")
        out(table1.format_table1(table1.compute_table1(dataset)))
        out("")
        out(
            table2.format_table2(
                table2.compute_table2(
                    result.dictionary, result.inferred_dictionary, dataset.topology
                )
            )
        )
        out("")
        out(table3.format_table3(table3.compute_table3(result)))
        out("")
        out(table4.format_table4(table4.compute_table4(result)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Inferring BGP Blackholing Activity in the Internet'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scale",
            choices=("small", "bench", "analysis", "longitudinal"),
            default="small",
            help="scenario size preset (default: small)",
        )
        sub.add_argument("--seed", type=int, default=23, help="scenario seed")

    simulate = subparsers.add_parser(
        "simulate", help="generate a scenario and print its statistics"
    )
    add_common(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    study = subparsers.add_parser(
        "study", help="run the full inference study and print results"
    )
    add_common(study)
    study.add_argument(
        "--report",
        choices=("summary", "tables", "all"),
        default="summary",
        help="what to print (default: summary)",
    )
    study.add_argument(
        "--workers",
        type=int,
        default=1,
        help="number of prefix shards for the inference pass (default: 1, serial)",
    )
    study.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="inner-loop chunk size for the inference engines (default: per elem)",
    )
    study.set_defaults(func=_cmd_study)
    return parser


def main(argv: Sequence[str] | None = None, out: Callable[[str], None] = print) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
