"""Setuptools entry point.

The pyproject [project] table carries all metadata; this file exists so the
package can be installed in environments where PEP 517 build isolation is
unavailable (e.g. offline machines without the ``wheel`` package).
"""
from setuptools import setup

setup()
